// Package controller implements the SDN controller side of the gateway:
// it deploys compiled rule sets to a fleet of switches over p4rt,
// classifies digested (table-miss) packets with the full stage-2 model as
// a slow path, and can reactively install exact-match drop entries for
// attacks the rules missed.
//
// The controller keeps a compiled mirror of each deployed rule shard
// (the same internal/match engine the switch tables run), so it can
// predict a given switch's verdict for any digested packet: reactive
// installs are suppressed when that switch's deployed shard already drops
// the key, keeping controller and switch provably in agreement.
//
// # Fleet sharding
//
// The controller owns a registry of N gateway switches, each assigned a
// shard index. DeployRuleSet partitions the distilled rule set with
// PlanShards (replicate or by-class) and programs every switch with its
// shard's rule set; all shards share the match-key layout and miss
// action, so the slow path is uniform. Digests fan in from every switch
// through a per-switch bounded queue drained round-robin by one worker —
// per switch and fleet-wide the accounting invariant
// Offered == Drained + Dropped + Depth holds at any quiescent point.
//
// # Fault tolerance
//
// Every switch connection is owned by a supervisor goroutine running a
// four-state machine (Connecting → Ready ⇄ Degraded → Closed). The
// controller holds the desired rule state — a program epoch (bumped by
// each DeployRuleSet) with one program per shard, plus the per-switch
// reactive entry log — and the supervisor reconciles the switch against
// it: when a connection dies it redials with jittered exponential backoff
// and replays the shard program and every reactive entry, so a switch
// restart converges back to the exact desired shard instead of silently
// running empty. DeployRuleSet therefore converges rather than errors
// when some switches are away: Ready switches are programmed
// synchronously, Degraded ones catch up on reconnect.
package controller

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"p4guard/internal/drift"
	"p4guard/internal/dtrace"
	"p4guard/internal/match"
	"p4guard/internal/p4"
	"p4guard/internal/p4rt"
	"p4guard/internal/packet"
	"p4guard/internal/rules"
	"p4guard/internal/telemetry"
)

// SlowPath classifies a packet with the full trained model; 0 is benign.
// *p4guard.Pipeline satisfies it.
type SlowPath interface {
	ClassifySlowPath(pkt *packet.Packet) int
	MatchOffsets() []int
}

// Residualer is the optional SlowPath extension the drift monitor uses:
// models exposing an autoencoder reconstruction error (like
// *p4guard.Pipeline) feed it into the residual-shift sketch. Models
// without it are observed with drift.NoResidual and scored on feature
// and verdict-mix drift alone.
type Residualer interface {
	Residual(pkt *packet.Packet) float64
}

// ConnState is one switch connection's position in the state machine.
type ConnState int32

// Connection states. Transitions: Connecting → Ready on a successful
// dial+reconcile; Ready → Degraded when the connection dies or an RPC
// fails; Degraded → Connecting on each redial attempt; anything → Closed
// on controller shutdown.
const (
	StateConnecting ConnState = iota
	StateReady
	StateDegraded
	StateClosed
)

// String names the state for logs, metrics labels, and flight events.
func (s ConnState) String() string {
	switch s {
	case StateConnecting:
		return "connecting"
	case StateReady:
		return "ready"
	case StateDegraded:
		return "degraded"
	case StateClosed:
		return "closed"
	default:
		return "unknown"
	}
}

// ConnStates lists every state, in order, for exporters that emit one
// series per state.
var ConnStates = []ConnState{StateConnecting, StateReady, StateDegraded, StateClosed}

// Config controls controller behaviour.
type Config struct {
	// Name identifies the controller in handshakes.
	Name string
	// Reactive enables exact-match drop installation for slow-path hits.
	Reactive bool
	// ReactivePriority is the priority reactive entries carry (must beat
	// compiled rules to stick; default 1<<20).
	ReactivePriority int
	// QueueDepth bounds each switch's digest fan-in queue, in batches
	// (default 1024). One overloaded switch fills only its own queue;
	// overflow is dropped with accounting, never blocking the p4rt read
	// loop or starving the other switches' digests.
	QueueDepth int
	// Shards is the number of rule shards the fleet is partitioned into
	// (default 1: every switch runs the same shard).
	Shards int
	// Policy selects how DeployRuleSet splits the rule set across shards
	// (default ShardReplicate).
	Policy ShardPolicy
	// FlightRecorder, when non-nil, receives structured events for every
	// digest round trip (classify outcome, monotonic duration), rule-set
	// deploy, connection state change, and reconciliation.
	FlightRecorder *telemetry.FlightRecorder
	// RPCTimeout bounds each p4rt call when the caller's context carries
	// no deadline (default p4rt.DefaultRPCTimeout).
	RPCTimeout time.Duration
	// ReconnectMin/ReconnectMax bound the jittered exponential backoff
	// between redial attempts (defaults 50ms and 3s).
	ReconnectMin time.Duration
	ReconnectMax time.Duration
	// Seed drives backoff jitter (default 1); fixed seeds keep soak runs
	// reproducible.
	Seed int64
	// Dialer overrides the transport dialer (fault injection in tests,
	// netsim topology dialing in emulated fabrics).
	Dialer p4rt.Dialer
	// Tracer, when non-nil and armed, records distributed-trace spans for
	// the digest round trip (fan-in wait → classify → plan → install) and
	// rule-set deploys, stitched to switch-side spans via the p4rt wire's
	// trace context. A nil or disarmed tracer costs one atomic load per
	// span site.
	Tracer *dtrace.Tracer
	// Drift, when non-nil and armed, receives every digest the slow path
	// classifies — keyed by the source switch's shard — and scores the
	// live sketches against the armed baseline profile. A nil or disarmed
	// monitor costs at most one atomic load per digest. Threshold
	// crossings are recorded in the FlightRecorder (kind "drift") when
	// one is attached.
	Drift *drift.Monitor
}

// Option mutates a Config before the controller starts; the functional-
// options surface of New.
type Option func(*Config)

// WithFlightRecorder wires the control-plane black box.
func WithFlightRecorder(fr *telemetry.FlightRecorder) Option {
	return func(c *Config) { c.FlightRecorder = fr }
}

// WithReactive toggles reactive exact-drop installation.
func WithReactive(on bool) Option {
	return func(c *Config) { c.Reactive = on }
}

// WithRPCTimeout sets the per-RPC deadline used when a call context has
// none.
func WithRPCTimeout(d time.Duration) Option {
	return func(c *Config) { c.RPCTimeout = d }
}

// WithReconnectBackoff bounds the jittered exponential redial backoff.
func WithReconnectBackoff(min, max time.Duration) Option {
	return func(c *Config) { c.ReconnectMin, c.ReconnectMax = min, max }
}

// WithSeed fixes the backoff-jitter RNG seed.
func WithSeed(seed int64) Option {
	return func(c *Config) { c.Seed = seed }
}

// WithDialer substitutes the transport dialer (internal/faultnet,
// internal/netsim).
func WithDialer(d p4rt.Dialer) Option {
	return func(c *Config) { c.Dialer = d }
}

// WithShards sets the fleet's shard count.
func WithShards(n int) Option {
	return func(c *Config) { c.Shards = n }
}

// WithShardPolicy sets the rule-partitioning policy.
func WithShardPolicy(p ShardPolicy) Option {
	return func(c *Config) { c.Policy = p }
}

// WithTracer attaches the distributed tracer the controller records
// digest-round-trip and deploy spans into.
func WithTracer(tr *dtrace.Tracer) Option {
	return func(c *Config) { c.Tracer = tr }
}

// WithDrift attaches the drift monitor the controller feeds slow-path
// digests into.
func WithDrift(m *drift.Monitor) Option {
	return func(c *Config) { c.Drift = m }
}

// Stats counts controller activity.
type Stats struct {
	DigestsProcessed int `json:"digests_processed"`
	SlowPathAttacks  int `json:"slow_path_attacks"`
	SlowPathBenign   int `json:"slow_path_benign"`
	ReactiveInstalls int `json:"reactive_installs"`
	// MirrorSuppressed counts reactive installs skipped because the
	// deployment mirror proved the data plane already drops the key.
	MirrorSuppressed int `json:"mirror_suppressed"`
	// Deploys counts successful DeployRuleSet calls; DeployedRules the
	// rows shipped by the most recent one, summed across shards.
	Deploys       int `json:"deploys"`
	DeployedRules int `json:"deployed_rules"`
	// DroppedBatches counts digest batches discarded because a switch's
	// fan-in queue was full (backpressure on the p4rt read loop), summed
	// across the fleet.
	DroppedBatches int `json:"dropped_batches"`
	// Reconnects counts successful redials after a connection died;
	// Reconciles counts desired-state replays onto a switch (initial
	// connect included); ReplayedEntries the reactive entries re-installed
	// by those replays.
	Reconnects      int `json:"reconnects"`
	Reconciles      int `json:"reconciles"`
	ReplayedEntries int `json:"replayed_entries"`
	// DeltaApplies counts epoch advances installed as incremental deltas
	// (vs full program swaps); DeltaFallbacks counts delta pushes a
	// switch rejected (old peer, base mismatch) that converged via the
	// full-swap fallback instead. CompressedRules counts rules removed by
	// the most recent deploy's compression pass, summed across shards.
	DeltaApplies    int `json:"delta_applies"`
	DeltaFallbacks  int `json:"delta_fallbacks"`
	CompressedRules int `json:"compressed_rules"`
}

// String renders the stats in the key=value form p4guard-ctl prints.
func (s Stats) String() string {
	return fmt.Sprintf("digests=%d slow_benign=%d slow_attack=%d reactive_installs=%d suppressed=%d deploys=%d reconnects=%d reconciles=%d",
		s.DigestsProcessed, s.SlowPathBenign, s.SlowPathAttacks, s.ReactiveInstalls, s.MirrorSuppressed, s.Deploys, s.Reconnects, s.Reconciles)
}

// desired is the controller's intended rule state: one program per shard.
// The epoch increments on each DeployRuleSet; the reconciler compares a
// switch's applied epoch (and reactive watermark) against it and replays
// the difference for that switch's shard.
type desired struct {
	valid  bool
	epoch  uint64
	shards []p4rt.Program
	// deltas[i], when non-nil, is the incremental edit that advances a
	// switch holding shard i's epoch-1 program to this epoch without a
	// full table swap (and without wiping its reactive entries). Only
	// minted by Deploy(WithDeltaOnly) when the previous epoch's shard
	// program is a valid, worthwhile delta base.
	deltas []*p4rt.DeltaMsg
	// at is when the epoch was minted; the reconciler measures epoch
	// propagation latency (deploy → applied on a given switch) against it.
	at time.Time
}

// FanInStats is one switch's digest fan-in accounting. At any quiescent
// point Offered == Drained + Dropped + Depth.
type FanInStats struct {
	Offered uint64 `json:"offered"`
	Drained uint64 `json:"drained"`
	Dropped uint64 `json:"dropped"`
	Depth   int    `json:"depth"`
}

// SwitchStatus is one switch's position in the fleet: identity, shard
// assignment, connection state, reconcile watermarks, and fan-in
// accounting. Snapshots are lock-cheap — no RPC-bearing lock is taken —
// so status stays responsive while a reconcile is replaying entries.
type SwitchStatus struct {
	Addr            string     `json:"addr"`
	Name            string     `json:"name,omitempty"`
	Node            string     `json:"node,omitempty"`
	Shard           int        `json:"shard"`
	State           string     `json:"state"`
	DesiredEpoch    uint64     `json:"desired_epoch"`
	AppliedEpoch    uint64     `json:"applied_epoch"`
	ReactiveLog     int        `json:"reactive_log"`
	AppliedReactive int        `json:"applied_reactive"`
	Reconnects      uint64     `json:"reconnects"`
	Reconciles      uint64     `json:"reconciles"`
	Replayed        uint64     `json:"replayed"`
	Digests         uint64     `json:"digests"`
	Installs        uint64     `json:"installs"`
	// EpochLatencyNs is how long the most recent program epoch took to
	// propagate from DeployRuleSet to this switch (0 until measured).
	EpochLatencyNs int64      `json:"epoch_latency_ns"`
	FanIn          FanInStats `json:"fan_in"`
}

// Controller manages a fleet of switch connections.
type Controller struct {
	cfg   Config
	model SlowPath

	ctx    context.Context // cancelled by Close; gates every supervisor
	cancel context.CancelFunc

	mu      sync.Mutex
	conns   map[string]*swConn
	fleet   []*swConn // join order, for status and deterministic iteration
	joined  int       // lifetime joins, drives auto shard assignment
	desired desired
	mirrors []*match.Compiled // per-shard compiled mirrors of last deploy
	stats   Stats
	closed  bool

	// Digest fan-in: per-switch bounded queues drained round-robin by the
	// worker. fanMu guards every queue plus its counters; it is never
	// held while mu is held (and vice versa) — the two domains only meet
	// in snapshot methods, which take them in sequence, not nested.
	fanMu    sync.Mutex
	fanCond  *sync.Cond
	fanOpen  bool
	fanConns []*swConn
	rr       int // round-robin cursor into fanConns

	workerWg sync.WaitGroup // digest worker
	superWg  sync.WaitGroup // connection supervisors

	// digestHist accumulates digest→install latency (fan-in enqueue to
	// install ack) for fleet health quantiles; always on — one observation
	// per reactive install, far off the per-packet path.
	digestHist *telemetry.Histogram

	// residual is the model's optional reconstruction-error hook,
	// resolved once at construction so the digest path pays an interface
	// assertion zero times.
	residual func(pkt *packet.Packet) float64
	// driftResidualHist, when registered, receives each observed residual
	// — the histogram RegisterFleetTelemetry exports.
	driftResidualHist atomic.Pointer[telemetry.Histogram]

	// Cached remote stats scrape (see RemoteSwitchStats), so one /metrics
	// render fanning out over several CollectFuncs costs one RPC sweep.
	remoteMu    sync.Mutex
	remoteAt    time.Time
	remoteStats []RemoteSwitchStats
}

// swConn is one supervised switch connection. opMu serializes RPC-bearing
// operations (reconcile, deploy push, reactive install) against the
// supervisor's replay, so the desired-state log is applied in order.
type swConn struct {
	addr  string
	shard int
	state atomic.Int32

	opMu     sync.Mutex
	client   *p4rt.Client // nil while down
	reactive []p4rt.WireEntry
	// noDelta marks a peer that rejected the delta message type (an old
	// switch); the reconciler stops offering deltas to it. Guarded by
	// opMu; reset on redial, since the peer may have been upgraded.
	noDelta bool

	// Watermarks are written under opMu but read lock-free by status
	// snapshots, so a slow reconcile never blocks FleetStatus.
	appliedEpoch    atomic.Uint64
	appliedReactive atomic.Uint64
	reactiveLen     atomic.Uint64

	name string          // switch name from the last handshake; guarded by Controller.mu
	node string          // fabric node from the last handshake; guarded by Controller.mu
	seen map[string]bool // reactive keys installed on THIS switch; guarded by Controller.mu

	reconnects     atomic.Uint64
	reconciles     atomic.Uint64
	replayed       atomic.Uint64
	digests        atomic.Uint64
	installs       atomic.Uint64
	epochLatencyNs atomic.Int64 // last epoch's deploy→applied latency
	rng            *rand.Rand   // jitter; supervisor goroutine only

	// Fan-in queue; guarded by Controller.fanMu.
	fanQ       []fanBatch
	fanOffered uint64
	fanDrained uint64
	fanDropped uint64
}

// fanBatch is one queued digest batch plus its fan-in arrival time — the
// start of the fanin_wait trace stage and of the digest→install latency
// measurement.
type fanBatch struct {
	pkts []p4rt.WirePacket
	at   time.Time
}

func (sc *swConn) setState(s ConnState) { sc.state.Store(int32(s)) }

// State returns the connection's current position in the state machine.
func (sc *swConn) State() ConnState { return ConnState(sc.state.Load()) }

// New builds a controller around a trained slow-path model. Options are
// applied over cfg, so callers mix the struct and functional styles.
func New(model SlowPath, cfg Config, opts ...Option) *Controller {
	for _, opt := range opts {
		opt(&cfg)
	}
	if cfg.Name == "" {
		cfg.Name = "p4guard-controller"
	}
	if cfg.ReactivePriority <= 0 {
		cfg.ReactivePriority = 1 << 20
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 1024
	}
	if cfg.Shards < 1 {
		cfg.Shards = 1
	}
	if cfg.RPCTimeout <= 0 {
		cfg.RPCTimeout = p4rt.DefaultRPCTimeout
	}
	if cfg.ReconnectMin <= 0 {
		cfg.ReconnectMin = 50 * time.Millisecond
	}
	if cfg.ReconnectMax < cfg.ReconnectMin {
		cfg.ReconnectMax = 3 * time.Second
		if cfg.ReconnectMax < cfg.ReconnectMin {
			cfg.ReconnectMax = cfg.ReconnectMin
		}
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	ctx, cancel := context.WithCancel(context.Background())
	c := &Controller{
		cfg:        cfg,
		model:      model,
		ctx:        ctx,
		cancel:     cancel,
		conns:      make(map[string]*swConn),
		fanOpen:    true,
		digestHist: telemetry.NewHistogram(digestInstallBuckets),
	}
	if r, ok := model.(Residualer); ok {
		c.residual = r.Residual
	}
	if cfg.Drift != nil && cfg.FlightRecorder != nil {
		fr := cfg.FlightRecorder
		cfg.Drift.OnCross(func(ev drift.CrossEvent) {
			fr.Record("drift", map[string]any{
				"shard":        ev.Shard,
				"up":           ev.Up,
				"score":        ev.Score,
				"threshold":    ev.Threshold,
				"observations": ev.Observations,
			})
		})
	}
	c.fanCond = sync.NewCond(&c.fanMu)
	c.workerWg.Add(1)
	go func() {
		defer c.workerWg.Done()
		c.worker()
	}()
	return c
}

// dialOpts builds the client options every dial uses.
func (c *Controller) dialOpts() []p4rt.ClientOption {
	opts := []p4rt.ClientOption{p4rt.WithRPCTimeout(c.cfg.RPCTimeout)}
	if c.cfg.Dialer != nil {
		opts = append(opts, p4rt.WithDialer(c.cfg.Dialer))
	}
	return opts
}

// recordState logs a state transition to the flight recorder.
func (c *Controller) recordState(sc *swConn, s ConnState, extra map[string]any) {
	sc.setState(s)
	if fr := c.cfg.FlightRecorder; fr != nil {
		fields := map[string]any{"switch": sc.addr, "state": s.String()}
		for k, v := range extra {
			fields[k] = v
		}
		fr.Record("conn_state", fields)
	}
}

// shardCount returns the configured shard count (always >= 1).
func (c *Controller) shardCount() int { return c.cfg.Shards }

// Connect dials a switch agent with an automatically assigned shard
// (join order modulo the shard count, so a homogeneous fleet balances
// itself). See ConnectShard.
func (c *Controller) Connect(ctx context.Context, addr string) error {
	return c.ConnectShard(ctx, addr, -1)
}

// ConnectShard dials a switch agent, assigns it to a shard (shard < 0
// auto-assigns by join order), and brings it to Ready — reconciling any
// already-deployed shard program — before returning. The initial dial is
// bounded by ctx and fails fast — no background retry — so callers learn
// about bad addresses immediately; after the first success a supervisor
// owns the connection and redials on every failure until Close. Digest
// handling runs on the controller's worker goroutine via the switch's
// bounded fan-in queue, so the p4rt read loop is never blocked by
// reactive RPCs.
func (c *Controller) ConnectShard(ctx context.Context, addr string, shard int) error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return fmt.Errorf("controller: closed")
	}
	if _, dup := c.conns[addr]; dup {
		c.mu.Unlock()
		return fmt.Errorf("controller: already connected to %s", addr)
	}
	if shard < 0 {
		shard = c.joined % c.shardCount()
	} else {
		shard = shard % c.shardCount()
	}
	c.joined++
	sc := &swConn{
		addr:  addr,
		shard: shard,
		seen:  make(map[string]bool),
		rng:   rand.New(rand.NewSource(c.cfg.Seed ^ int64(len(c.conns)+1)*0x9E3779B9)),
	}
	sc.setState(StateConnecting)
	c.conns[addr] = sc
	c.fleet = append(c.fleet, sc)
	c.mu.Unlock()
	c.fanMu.Lock()
	c.fanConns = append(c.fanConns, sc)
	c.fanMu.Unlock()

	cl, err := p4rt.DialContext(ctx, addr, c.cfg.Name, func(pkts []p4rt.WirePacket) {
		c.enqueue(sc, pkts)
	}, c.dialOpts()...)
	if err != nil {
		c.unregister(sc)
		return fmt.Errorf("controller: connect %s: %w", addr, err)
	}
	sc.opMu.Lock()
	sc.client = cl
	if err := c.reconcileLocked(ctx, sc); err != nil {
		sc.client = nil
		sc.opMu.Unlock()
		_ = cl.Close()
		c.unregister(sc)
		return fmt.Errorf("controller: connect %s: %w", addr, err)
	}
	sc.opMu.Unlock()
	c.setIdentity(sc, cl)
	c.recordState(sc, StateReady, map[string]any{"name": cl.ServerName()})
	if fr := c.cfg.FlightRecorder; fr != nil {
		fr.Record("connect", map[string]any{
			"switch": addr, "name": cl.ServerName(), "node": cl.ServerNode(), "shard": shard,
		})
	}
	c.superWg.Add(1)
	go func() {
		defer c.superWg.Done()
		c.supervise(sc, cl)
	}()
	return nil
}

// setIdentity records the handshake identity under the registry lock.
func (c *Controller) setIdentity(sc *swConn, cl *p4rt.Client) {
	c.mu.Lock()
	sc.name = cl.ServerName()
	sc.node = cl.ServerNode()
	c.mu.Unlock()
}

// unregister rolls back a failed initial connect: the switch leaves the
// registry, the fleet, and the fan-in rotation, and its join is refunded
// so the next auto-assignment lands on the same shard.
func (c *Controller) unregister(sc *swConn) {
	c.mu.Lock()
	delete(c.conns, sc.addr)
	for i, other := range c.fleet {
		if other == sc {
			c.fleet = append(c.fleet[:i], c.fleet[i+1:]...)
			break
		}
	}
	c.joined--
	c.mu.Unlock()
	c.fanMu.Lock()
	for i, other := range c.fanConns {
		if other == sc {
			c.fanConns = append(c.fanConns[:i], c.fanConns[i+1:]...)
			break
		}
	}
	c.fanMu.Unlock()
}

// supervise owns one connection after its initial success: it waits for
// the connection to die, then runs the redial/reconcile loop until the
// controller closes.
func (c *Controller) supervise(sc *swConn, cl *p4rt.Client) {
	for {
		select {
		case <-c.ctx.Done():
			if cl != nil {
				_ = cl.Close()
			}
			c.recordState(sc, StateClosed, nil)
			return
		case <-cl.Done():
			_ = cl.Close()
			sc.opMu.Lock()
			sc.client = nil
			sc.opMu.Unlock()
			c.recordState(sc, StateDegraded, nil)
		}
		next, err := c.redial(sc)
		if err != nil {
			c.recordState(sc, StateClosed, nil)
			return
		}
		cl = next
	}
}

// redial reconnects with jittered exponential backoff until dial AND
// reconcile both succeed, or the controller closes. A restarted switch
// comes back empty, so the applied watermarks are reset before the
// reconcile: the full shard program and every reactive entry are
// replayed.
func (c *Controller) redial(sc *swConn) (*p4rt.Client, error) {
	backoff := c.cfg.ReconnectMin
	for attempt := 1; ; attempt++ {
		select {
		case <-c.ctx.Done():
			return nil, c.ctx.Err()
		default:
		}
		c.recordState(sc, StateConnecting, map[string]any{"attempt": attempt})
		dctx, cancel := context.WithTimeout(c.ctx, c.cfg.RPCTimeout)
		cl, err := p4rt.DialContext(dctx, sc.addr, c.cfg.Name, func(pkts []p4rt.WirePacket) {
			c.enqueue(sc, pkts)
		}, c.dialOpts()...)
		cancel()
		if err == nil {
			sc.opMu.Lock()
			sc.client = cl
			// The peer may be a fresh process: assume nothing survived,
			// and re-probe delta support (it may have been upgraded).
			sc.appliedEpoch.Store(0)
			sc.appliedReactive.Store(0)
			sc.noDelta = false
			rerr := c.reconcileLocked(c.ctx, sc)
			if rerr != nil {
				sc.client = nil
			}
			sc.opMu.Unlock()
			if rerr == nil {
				c.setIdentity(sc, cl)
				sc.reconnects.Add(1)
				c.bumpStat(func(s *Stats) { s.Reconnects++ })
				c.recordState(sc, StateReady, map[string]any{"attempt": attempt, "name": cl.ServerName()})
				return cl, nil
			}
			_ = cl.Close()
			if errors.Is(rerr, context.Canceled) {
				return nil, rerr
			}
		}
		c.recordState(sc, StateDegraded, map[string]any{"attempt": attempt})
		// Full jitter over [backoff/2, backoff): desynchronizes herds of
		// controllers hammering a rebooting switch.
		d := backoff/2 + time.Duration(sc.rng.Int63n(int64(backoff/2)+1))
		select {
		case <-c.ctx.Done():
			return nil, c.ctx.Err()
		case <-time.After(d):
		}
		backoff *= 2
		if backoff > c.cfg.ReconnectMax {
			backoff = c.cfg.ReconnectMax
		}
	}
}

// shardProgram picks the desired program for a switch's shard.
func (d desired) shardProgram(shard int) p4rt.Program {
	if len(d.shards) == 0 {
		return p4rt.Program{}
	}
	return d.shards[shard%len(d.shards)]
}

// shardDelta picks the shard's incremental edit from epoch-1 to this
// epoch, nil when only a full swap can converge the switch.
func (d desired) shardDelta(shard int) *p4rt.DeltaMsg {
	if len(d.deltas) == 0 {
		return nil
	}
	return d.deltas[shard%len(d.deltas)]
}

// reconcileLocked replays the desired state the switch is missing: its
// shard's current program when the switch's epoch is stale (which wipes
// the table, so all reactive entries follow), otherwise just the
// un-replayed reactive tail. Callers hold sc.opMu and have sc.client
// non-nil.
func (c *Controller) reconcileLocked(ctx context.Context, sc *swConn) error {
	c.mu.Lock()
	want := c.desired
	c.mu.Unlock()

	cl := sc.client
	replayedProg := false
	deltaApplied := false
	var replayedEntries int
	if want.valid && sc.appliedEpoch.Load() < want.epoch {
		// A switch exactly one epoch behind can advance with the deploy's
		// precomputed delta: no full table swap, reactive entries and
		// surviving counters stay live. Anything else — older epochs, a
		// peer that rejected the delta message type, a base-signature
		// mismatch on the switch — converges via the full program swap.
		if d := want.shardDelta(sc.shard); d != nil && !sc.noDelta &&
			sc.appliedEpoch.Load() == want.epoch-1 {
			if _, err := cl.ProgramDelta(ctx, *d); err == nil {
				deltaApplied = true
				c.bumpStat(func(s *Stats) { s.DeltaApplies++ })
			} else if errors.Is(err, p4rt.ErrRejected) {
				// Old peers reject the unknown message type permanently;
				// a base mismatch is per-epoch. Either way this epoch
				// falls back to the full swap below.
				if re := (*p4rt.RejectError)(nil); errors.As(err, &re) && strings.Contains(re.Reason, "unknown message type") {
					sc.noDelta = true
				}
				c.bumpStat(func(s *Stats) { s.DeltaFallbacks++ })
			} else {
				return fmt.Errorf("reconcile %s: delta epoch %d shard %d: %w", sc.addr, want.epoch, sc.shard, err)
			}
		}
		if !deltaApplied {
			if _, err := cl.ProgramDetector(ctx, want.shardProgram(sc.shard)); err != nil {
				return fmt.Errorf("reconcile %s: program epoch %d shard %d: %w", sc.addr, want.epoch, sc.shard, err)
			}
			sc.appliedReactive.Store(0) // Program replaced the table: replay all
			replayedProg = true
		}
		sc.appliedEpoch.Store(want.epoch)
		if !want.at.IsZero() {
			sc.epochLatencyNs.Store(time.Since(want.at).Nanoseconds())
		}
	}
	for int(sc.appliedReactive.Load()) < len(sc.reactive) {
		e := sc.reactive[sc.appliedReactive.Load()]
		if _, err := cl.WriteEntry(ctx, e); err != nil {
			return fmt.Errorf("reconcile %s: reactive entry %d/%d: %w", sc.addr, sc.appliedReactive.Load()+1, len(sc.reactive), err)
		}
		sc.appliedReactive.Add(1)
		replayedEntries++
	}
	sc.reconciles.Add(1)
	c.bumpStat(func(s *Stats) {
		s.Reconciles++
		s.ReplayedEntries += replayedEntries
	})
	sc.replayed.Add(uint64(replayedEntries))
	if fr := c.cfg.FlightRecorder; fr != nil {
		fr.Record("reconcile", map[string]any{
			"switch":   sc.addr,
			"epoch":    want.epoch,
			"shard":    sc.shard,
			"program":  replayedProg,
			"reactive": replayedEntries,
		})
	}
	return nil
}

func (c *Controller) bumpStat(fn func(*Stats)) {
	c.mu.Lock()
	fn(&c.stats)
	c.mu.Unlock()
}

// enqueue appends one digest batch to the switch's fan-in queue, dropping
// (with accounting) when the queue is at depth. Called from the p4rt read
// loop, so it must never block: a stalled worker costs batches, not
// connections. The invariant fanOffered == fanDrained + fanDropped +
// len(fanQ) holds under fanMu at every return.
func (c *Controller) enqueue(sc *swConn, pkts []p4rt.WirePacket) {
	now := time.Now()
	c.fanMu.Lock()
	sc.fanOffered++
	if !c.fanOpen || len(sc.fanQ) >= c.cfg.QueueDepth {
		sc.fanDropped++
		c.fanMu.Unlock()
		return
	}
	sc.fanQ = append(sc.fanQ, fanBatch{pkts: pkts, at: now})
	c.fanMu.Unlock()
	c.fanCond.Signal()
}

// nextBatch blocks until some switch has a queued digest batch, then pops
// one round-robin — the cursor advances past the serviced switch, so a
// chatty gateway cannot starve the rest of the fleet. Returns ok=false
// only when the fan-in is closed AND every queue is drained: pending
// digests are processed, not abandoned, on shutdown.
func (c *Controller) nextBatch() (*swConn, fanBatch, bool) {
	c.fanMu.Lock()
	defer c.fanMu.Unlock()
	for {
		if n := len(c.fanConns); n > 0 {
			for i := 0; i < n; i++ {
				sc := c.fanConns[(c.rr+i)%n]
				if len(sc.fanQ) == 0 {
					continue
				}
				batch := sc.fanQ[0]
				sc.fanQ[0] = fanBatch{}
				sc.fanQ = sc.fanQ[1:]
				if len(sc.fanQ) == 0 {
					sc.fanQ = nil // release the drained backing array
				}
				sc.fanDrained++
				c.rr = (c.rr + i + 1) % n
				return sc, batch, true
			}
		}
		if !c.fanOpen {
			return nil, fanBatch{}, false
		}
		c.fanCond.Wait()
	}
}

// worker drains digest batches round-robin across the fleet: slow-path
// classify, optionally react.
func (c *Controller) worker() {
	for {
		sc, batch, ok := c.nextBatch()
		if !ok {
			return
		}
		for _, wp := range batch.pkts {
			c.handleDigest(sc, wp, batch.at)
		}
	}
}

// chainCtx advances a trace chain: the finished span's context when it
// was recorded, else the previous context (so a disarmed local tracer
// still forwards the wire context downstream).
func chainCtx(prev dtrace.SpanContext, sp dtrace.ActiveSpan) dtrace.SpanContext {
	if sp.Active() {
		return sp.Context()
	}
	return prev
}

// handleDigest runs one digest through the slow path and the reactive
// decision, tracing the whole round trip as a flight-recorder event:
// kind "digest" with the switch address, the slow-path class, the final
// decision, and the monotonic duration of classify+decide+install.
// When the digest carries wire trace context and the controller tracer
// is armed, the round trip is also recorded as chained trace stages —
// fanin_wait (fan-in enqueue → here) → classify → plan → install — each
// parented to its predecessor so the whole digest path assembles into
// one critical-path chain with the switch-side digest_wait root.
// Dedup and mirror suppression are per switch: two switches digesting the
// same attack each get their own reactive entry, because each enforces
// only its own shard.
func (c *Controller) handleDigest(sc *swConn, wp p4rt.WirePacket, arrived time.Time) {
	fr := c.cfg.FlightRecorder
	var start int64
	if fr != nil {
		start = fr.Now().Nanoseconds()
	}
	decision := "attack"

	tr := c.cfg.Tracer
	ctx := dtrace.SpanContext{Trace: dtrace.TraceID(wp.TraceID), Span: dtrace.SpanID(wp.SpanID)}
	fanSpan := tr.StartSpanAt(ctx, dtrace.StageFanInWait, arrived)
	fanSpan.End() // fan-in wait ended the moment handling started
	ctx = chainCtx(ctx, fanSpan)

	clsSpan := tr.StartSpan(ctx, dtrace.StageClassify)
	pkt := wp.ToPacket()
	class := c.model.ClassifySlowPath(pkt)
	clsSpan.End()
	ctx = chainCtx(ctx, clsSpan)
	sc.digests.Add(1)

	// Drift observation: one atomic load when the monitor is disarmed or
	// absent; the residual forward pass runs only while armed.
	if da := c.cfg.Drift.Armed(); da != nil {
		res := drift.NoResidual
		if c.residual != nil {
			res = c.residual(pkt)
		}
		da.ObservePacket(sc.shard, pkt, class, res)
		if h := c.driftResidualHist.Load(); h != nil && !math.IsNaN(res) {
			h.Observe(res)
		}
	}

	planSpan := tr.StartSpan(ctx, dtrace.StagePlan)
	c.mu.Lock()
	c.stats.DigestsProcessed++
	var install bool
	var key []byte
	switch {
	case class == 0:
		c.stats.SlowPathBenign++
		decision = "benign"
	default:
		c.stats.SlowPathAttacks++
		if c.cfg.Reactive {
			// The deployment mirror runs the same compiled engine as the
			// switch table — this switch's shard of it. When the shard
			// already drops this packet the digest is stale (raced a
			// deploy) and an exact-match entry would only waste TCAM.
			if ms := c.mirrors; len(ms) > 0 {
				if mc, matched := ms[sc.shard%len(ms)].Classify(pkt); matched && rules.ActionForClass(mc) == rules.ActionDrop {
					c.stats.MirrorSuppressed++
					decision = "suppressed"
					break
				}
			}
			key = rules.ExtractKey(pkt, c.model.MatchOffsets())
			if sc.seen[string(key)] {
				decision = "duplicate"
				break
			}
			sc.seen[string(key)] = true
			install = true
		}
	}
	c.mu.Unlock()
	planSpan.End()
	ctx = chainCtx(ctx, planSpan)

	if install {
		instSpan := tr.StartSpan(ctx, dtrace.StageInstall)
		instSpan.SetAttr("switch", sc.addr)
		ctx = chainCtx(ctx, instSpan)
		// Exact match expressed as a degenerate range (lo==hi). The entry
		// joins the switch's desired reactive log first, so even if the
		// write races a connection failure the reconciler replays it.
		entry := p4rt.WireEntry{
			Priority: c.cfg.ReactivePriority,
			Lo:       key,
			Hi:       append([]byte(nil), key...),
			Action:   p4rt.FormatAction(p4.ActionDrop),
			Class:    class,
		}
		sc.opMu.Lock()
		sc.reactive = append(sc.reactive, entry)
		sc.reactiveLen.Store(uint64(len(sc.reactive)))
		cl := sc.client
		var err error
		if cl == nil {
			err = p4rt.ErrConnClosed
		} else {
			// The traced write carries the install span's context so the
			// switch records its apply span nested under it.
			_, err = cl.WriteEntryTraced(c.ctx, entry, uint64(ctx.Trace), uint64(ctx.Span))
			if err == nil {
				sc.appliedReactive.Add(1)
			}
		}
		sc.opMu.Unlock()
		instSpan.End()
		if err == nil {
			decision = "install"
			sc.installs.Add(1)
			c.bumpStat(func(s *Stats) { s.ReactiveInstalls++ })
			if !arrived.IsZero() {
				c.digestHist.Observe(time.Since(arrived).Seconds())
			}
		} else {
			// The entry stays in the desired log; the supervisor replays
			// it once the switch is back.
			decision = "install_deferred"
		}
	}
	if fr != nil {
		fr.Record("digest", map[string]any{
			"switch":   sc.addr,
			"class":    class,
			"decision": decision,
			"dur_ns":   fr.Now().Nanoseconds() - start,
		})
	}
}

// DeployOption customizes a Deploy call.
type DeployOption func(*deployConfig)

type deployConfig struct {
	miss      p4.Action
	compress  int
	deltaOnly bool
}

// WithMissAction sets the detector's default action for this deployment:
// digest keeps the slow path in the loop (the default), allow runs
// open-loop.
func WithMissAction(a p4.Action) DeployOption {
	return func(c *deployConfig) { c.miss = a }
}

// WithCompression runs the verdict-preserving rules.Compress pass at the
// given level (see rules.Compress) before sharding, so switches are
// programmed with the smaller equivalent rule set. Level 0 (the default)
// deploys the rule set as given.
func WithCompression(level int) DeployOption {
	return func(c *deployConfig) { c.compress = level }
}

// WithDeltaOnly asks Deploy to diff each shard's new program against the
// previous deployment and record per-shard deltas alongside the full
// programs. Switches exactly one epoch behind then converge via the
// delta (preserving live counters and reactive entries); everything else
// — older switches, pre-delta peers, base-signature mismatches — still
// converges via the full program, so the option is always safe.
func WithDeltaOnly() DeployOption {
	return func(c *deployConfig) { c.deltaOnly = true }
}

// DeployRuleSet deploys rs with missAction as the detector default.
//
// Deprecated: use Deploy with WithMissAction; DeployRuleSet is a
// compatibility shim over it.
func (c *Controller) DeployRuleSet(ctx context.Context, rs *rules.RuleSet, missAction p4.Action) error {
	return c.Deploy(ctx, rs, WithMissAction(missAction))
}

// Deploy partitions the compiled rules into per-shard sets (PlanShards
// under the configured policy), records them as the controller's desired
// state (bumping the program epoch), and programs every Ready switch
// with its shard synchronously. Switches that are Degraded or
// mid-reconnect are not an error: their supervisors replay the new epoch
// on reconnect, so the fleet converges to this rule set. The call fails
// only on a rule set the matcher or compressor rejects, a cancelled or
// expired ctx (typed: context.Canceled / p4rt.ErrTimeout), or when no
// switch was ever connected. Options select the miss action
// (WithMissAction, default digest), a pre-shard compression pass
// (WithCompression), and incremental reprogramming (WithDeltaOnly).
func (c *Controller) Deploy(ctx context.Context, rs *rules.RuleSet, opts ...DeployOption) error {
	if ctx == nil {
		ctx = context.Background()
	}
	dc := deployConfig{miss: p4.Action{Type: p4.ActionDigest}}
	for _, o := range opts {
		o(&dc)
	}
	if dc.compress > 0 {
		crs, cstats, err := rules.Compress(rs, dc.compress)
		if err != nil {
			return fmt.Errorf("controller: compress: %w", err)
		}
		rs = crs
		c.bumpStat(func(s *Stats) { s.CompressedRules += cstats.Removed() })
	}
	missAction := dc.miss
	// Compile every shard first: a rule set the unified matcher rejects
	// must never reach a switch, and the compiled mirrors are what the
	// reactive path consults for per-switch deployed coverage.
	shardSets := PlanShards(rs, c.shardCount(), c.cfg.Policy)
	mirrors := make([]*match.Compiled, len(shardSets))
	progs := make([]p4rt.Program, len(shardSets))
	total := 0
	for i, srs := range shardSets {
		m, err := match.Compile(srs)
		if err != nil {
			return fmt.Errorf("controller: shard %d: %w", i, err)
		}
		prog, err := p4rt.ProgramFromRuleSet(srs, missAction)
		if err != nil {
			return fmt.Errorf("controller: shard %d: %w", i, err)
		}
		mirrors[i] = m
		progs[i] = prog
		total += len(prog.Entries)
	}
	// One deploy trace spans the whole call; its context is stamped onto
	// every shard program so each switch's program_apply span — including
	// later replays by the reconciler — nests under this deploy.
	root := c.cfg.Tracer.StartTrace(dtrace.StageDeploy)
	if root.Active() {
		rctx := root.Context()
		for i := range progs {
			progs[i].TraceID, progs[i].SpanID = uint64(rctx.Trace), uint64(rctx.Span)
		}
	}
	// Delta minting diffs each shard against the previous desired
	// program. The diff is O(entries), so it runs outside c.mu; the
	// install section below re-checks that no concurrent deploy moved
	// the epoch in between and drops the deltas if one did (they would
	// describe the wrong base program).
	var deltas []*p4rt.DeltaMsg
	var deltaBase uint64
	if dc.deltaOnly {
		c.mu.Lock()
		prevValid := c.desired.valid && len(c.desired.shards) == len(progs)
		prevShards := c.desired.shards
		deltaBase = c.desired.epoch
		c.mu.Unlock()
		if prevValid {
			deltas = make([]*p4rt.DeltaMsg, len(progs))
			minted := false
			for i := range progs {
				d, ok := p4rt.DeltaFromPrograms(prevShards[i], progs[i])
				// A delta carrying more edits than half the program
				// saves nothing over a full swap; ship it wholesale.
				if ok && d.Size()*2 <= len(progs[i].Entries)+1 {
					d.TraceID, d.SpanID = progs[i].TraceID, progs[i].SpanID
					deltas[i] = &d
					minted = true
				}
			}
			if !minted {
				deltas = nil
			}
		}
	}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return fmt.Errorf("controller: closed")
	}
	if deltas != nil && c.desired.epoch != deltaBase {
		deltas = nil
	}
	c.desired.valid = true
	c.desired.epoch++
	c.desired.shards = progs
	c.desired.deltas = deltas
	c.desired.at = time.Now()
	epoch := c.desired.epoch
	conns := append([]*swConn(nil), c.fleet...)
	c.mirrors = mirrors
	c.mu.Unlock()
	if len(conns) == 0 {
		return fmt.Errorf("controller: no connected switches")
	}

	var start int64
	if fr := c.cfg.FlightRecorder; fr != nil {
		start = fr.Now().Nanoseconds()
	}
	applied := 0
	for _, sc := range conns {
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("controller: deploy epoch %d: %w", epoch, err)
		}
		sc.opMu.Lock()
		if sc.client == nil || sc.appliedEpoch.Load() >= epoch {
			// Down (the supervisor will replay this epoch on reconnect)
			// or already converged past us by a concurrent deploy.
			sc.opMu.Unlock()
			continue
		}
		err := c.reconcileLocked(ctx, sc)
		sc.opMu.Unlock()
		switch {
		case err == nil:
			applied++
		case errors.Is(err, context.Canceled) || errors.Is(err, p4rt.ErrTimeout) || errors.Is(err, context.DeadlineExceeded):
			return fmt.Errorf("controller: deploy to %s: %w", sc.addr, err)
		case errors.Is(err, p4rt.ErrRejected):
			// The switch refused the program: converging is impossible,
			// and retrying would loop. Surface it.
			return fmt.Errorf("controller: deploy to %s: %w", sc.addr, err)
		default:
			// Transport failure mid-deploy: close the client so the
			// supervisor notices and replays once the switch returns.
			if cl := sc.clientSnapshot(); cl != nil {
				_ = cl.Close()
			}
		}
	}
	c.bumpStat(func(s *Stats) {
		s.Deploys++
		s.DeployedRules = total
	})
	if fr := c.cfg.FlightRecorder; fr != nil {
		nd := 0
		for _, d := range deltas {
			if d != nil {
				nd++
			}
		}
		fr.Record("deploy", map[string]any{
			"rules":        total,
			"epoch":        epoch,
			"shards":       len(progs),
			"delta_shards": nd,
			"switches":     len(conns),
			"applied":      applied,
			"dur_ns":       fr.Now().Nanoseconds() - start,
		})
	}
	root.SetAttr("epoch", fmt.Sprintf("%d", epoch))
	root.End()
	return nil
}

func (sc *swConn) clientSnapshot() *p4rt.Client {
	sc.opMu.Lock()
	defer sc.opMu.Unlock()
	return sc.client
}

// RegisterTelemetry exports the controller's counters through a metrics
// registry; values are read from the stats snapshot at scrape time. Per-
// switch connection state is exported one-hot as
// p4guard_ctl_conn_state{switch,state}, so dashboards alert on any switch
// leaving ready; per-switch fleet series (shard, watermarks, digest and
// fan-in counters) come from the same FleetStatus snapshot status
// consumers read.
func (c *Controller) RegisterTelemetry(reg *telemetry.Registry) {
	ctl := telemetry.Label{Key: "controller", Value: c.cfg.Name}
	stat := func(pick func(Stats) int) func() float64 {
		return func() float64 { return float64(pick(c.Stats())) }
	}
	reg.CounterFunc("p4guard_ctl_digests_processed_total", "Digests classified on the slow path.",
		stat(func(s Stats) int { return s.DigestsProcessed }), ctl)
	reg.CounterFunc("p4guard_ctl_slowpath_total", "Slow-path verdicts by outcome.",
		stat(func(s Stats) int { return s.SlowPathBenign }), ctl, telemetry.Label{Key: "outcome", Value: "benign"})
	reg.CounterFunc("p4guard_ctl_slowpath_total", "Slow-path verdicts by outcome.",
		stat(func(s Stats) int { return s.SlowPathAttacks }), ctl, telemetry.Label{Key: "outcome", Value: "attack"})
	reg.CounterFunc("p4guard_ctl_reactive_installs_total", "Reactive drop entries installed.",
		stat(func(s Stats) int { return s.ReactiveInstalls }), ctl)
	reg.CounterFunc("p4guard_ctl_mirror_suppressed_total", "Reactive installs suppressed by the deployment mirror.",
		stat(func(s Stats) int { return s.MirrorSuppressed }), ctl)
	reg.CounterFunc("p4guard_ctl_deploys_total", "Successful rule-set deployments.",
		stat(func(s Stats) int { return s.Deploys }), ctl)
	reg.GaugeFunc("p4guard_ctl_deployed_rules", "Rules shipped by the most recent deployment, all shards.",
		stat(func(s Stats) int { return s.DeployedRules }), ctl)
	reg.CounterFunc("p4guard_ctl_dropped_batches_total", "Digest batches dropped by fan-in backpressure, fleet-wide.",
		stat(func(s Stats) int { return s.DroppedBatches }), ctl)
	reg.CounterFunc("p4guard_ctl_reconnects_total", "Successful switch redials after a connection died.",
		stat(func(s Stats) int { return s.Reconnects }), ctl)
	reg.CounterFunc("p4guard_ctl_reconciles_total", "Desired-state replays onto a switch.",
		stat(func(s Stats) int { return s.Reconciles }), ctl)
	reg.CounterFunc("p4guard_ctl_replayed_entries_total", "Reactive entries re-installed by reconciliation.",
		stat(func(s Stats) int { return s.ReplayedEntries }), ctl)
	reg.CounterFunc("p4guard_ctl_delta_applies_total", "Epoch advances applied as incremental deltas.",
		stat(func(s Stats) int { return s.DeltaApplies }), ctl)
	reg.CounterFunc("p4guard_ctl_delta_fallbacks_total", "Delta pushes rejected and retried as full programs.",
		stat(func(s Stats) int { return s.DeltaFallbacks }), ctl)
	reg.CounterFunc("p4guard_ctl_compressed_rules_total", "Rules eliminated by deploy-time compression.",
		stat(func(s Stats) int { return s.CompressedRules }), ctl)
	reg.CollectFunc("p4guard_ctl_conn_state", "Per-switch connection state (one-hot).", "gauge",
		func(emit func([]telemetry.Label, float64)) {
			for addr, st := range c.States() {
				for _, s := range ConnStates {
					v := 0.0
					if s == st {
						v = 1
					}
					emit([]telemetry.Label{ctl,
						{Key: "switch", Value: addr},
						{Key: "state", Value: s.String()},
					}, v)
				}
			}
		})
	perSwitch := func(name, help, typ string, pick func(SwitchStatus) float64) {
		reg.CollectFunc(name, help, typ, func(emit func([]telemetry.Label, float64)) {
			for _, st := range c.FleetStatus() {
				emit([]telemetry.Label{ctl, {Key: "switch", Value: st.Addr}}, pick(st))
			}
		})
	}
	perSwitch("p4guard_ctl_switch_shard", "Shard index each switch enforces.", "gauge",
		func(s SwitchStatus) float64 { return float64(s.Shard) })
	perSwitch("p4guard_ctl_switch_applied_epoch", "Program epoch each switch last applied.", "gauge",
		func(s SwitchStatus) float64 { return float64(s.AppliedEpoch) })
	perSwitch("p4guard_ctl_switch_digests_total", "Digests handled, by source switch.", "counter",
		func(s SwitchStatus) float64 { return float64(s.Digests) })
	perSwitch("p4guard_ctl_switch_installs_total", "Reactive installs, by target switch.", "counter",
		func(s SwitchStatus) float64 { return float64(s.Installs) })
	perSwitch("p4guard_ctl_fanin_offered_total", "Digest batches offered to a switch's fan-in queue.", "counter",
		func(s SwitchStatus) float64 { return float64(s.FanIn.Offered) })
	perSwitch("p4guard_ctl_fanin_drained_total", "Digest batches drained from a switch's fan-in queue.", "counter",
		func(s SwitchStatus) float64 { return float64(s.FanIn.Drained) })
	perSwitch("p4guard_ctl_fanin_dropped_total", "Digest batches dropped by a switch's fan-in backpressure.", "counter",
		func(s SwitchStatus) float64 { return float64(s.FanIn.Dropped) })
	perSwitch("p4guard_ctl_fanin_depth", "Digest batches currently queued per switch.", "gauge",
		func(s SwitchStatus) float64 { return float64(s.FanIn.Depth) })
	reg.GaugeFunc("p4guard_ctl_desired_epoch", "Current desired program epoch.",
		func() float64 {
			c.mu.Lock()
			defer c.mu.Unlock()
			return float64(c.desired.epoch)
		}, ctl)
}

// Stats returns a snapshot of controller counters. DroppedBatches is
// summed from the per-switch fan-in accounting at snapshot time.
func (c *Controller) Stats() Stats {
	c.mu.Lock()
	st := c.stats
	fleet := append([]*swConn(nil), c.fleet...)
	c.mu.Unlock()
	c.fanMu.Lock()
	for _, sc := range fleet {
		st.DroppedBatches += int(sc.fanDropped)
	}
	c.fanMu.Unlock()
	return st
}

// FleetStatus snapshots every switch in join order: identity, shard,
// state, reconcile watermarks, and fan-in accounting. It never takes an
// RPC-bearing lock, so it stays responsive mid-reconcile. Within one
// call each switch's FanIn satisfies Offered == Drained+Dropped+Depth
// (all four are read under one hold of the fan-in lock), and so do the
// fleet-wide sums.
func (c *Controller) FleetStatus() []SwitchStatus {
	c.mu.Lock()
	fleet := append([]*swConn(nil), c.fleet...)
	epoch := c.desired.epoch
	out := make([]SwitchStatus, len(fleet))
	for i, sc := range fleet {
		out[i] = SwitchStatus{
			Addr:            sc.addr,
			Name:            sc.name,
			Node:            sc.node,
			Shard:           sc.shard,
			State:           sc.State().String(),
			DesiredEpoch:    epoch,
			AppliedEpoch:    sc.appliedEpoch.Load(),
			ReactiveLog:     int(sc.reactiveLen.Load()),
			AppliedReactive: int(sc.appliedReactive.Load()),
			Reconnects:      sc.reconnects.Load(),
			Reconciles:      sc.reconciles.Load(),
			Replayed:        sc.replayed.Load(),
			Digests:         sc.digests.Load(),
			Installs:        sc.installs.Load(),
			EpochLatencyNs:  sc.epochLatencyNs.Load(),
		}
	}
	c.mu.Unlock()
	c.fanMu.Lock()
	for i, sc := range fleet {
		out[i].FanIn = FanInStats{
			Offered: sc.fanOffered,
			Drained: sc.fanDrained,
			Dropped: sc.fanDropped,
			Depth:   len(sc.fanQ),
		}
	}
	c.fanMu.Unlock()
	return out
}

// States returns each connected switch's current connection state, keyed
// by address.
func (c *Controller) States() map[string]ConnState {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]ConnState, len(c.conns))
	for addr, sc := range c.conns {
		out[addr] = sc.State()
	}
	return out
}

// Switches returns the names of connected switches.
func (c *Controller) Switches() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	names := make([]string, 0, len(c.fleet))
	for _, sc := range c.fleet {
		if n := sc.name; n != "" {
			names = append(names, n)
		}
	}
	return names
}

// Close disconnects every switch, stops the supervisors, and drains the
// worker. It is idempotent and leaves no goroutines behind.
func (c *Controller) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	conns := append([]*swConn(nil), c.fleet...)
	c.mu.Unlock()

	// Order matters: cancel (stops redials), close live clients (their
	// read loops exit, so no new digests), wait for supervisors (who may
	// hold freshly-dialed clients), and only then close the fan-in the
	// read loops feed — the worker drains what is queued and exits.
	c.cancel()
	var firstErr error
	for _, sc := range conns {
		if cl := sc.clientSnapshot(); cl != nil {
			if err := cl.Close(); err != nil && firstErr == nil {
				firstErr = err
			}
		}
	}
	c.superWg.Wait()
	c.fanMu.Lock()
	c.fanOpen = false
	c.fanMu.Unlock()
	c.fanCond.Broadcast()
	c.workerWg.Wait()
	return firstErr
}
