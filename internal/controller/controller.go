// Package controller implements the SDN controller side of the gateway:
// it deploys compiled rule sets to switches over p4rt, classifies digested
// (table-miss) packets with the full stage-2 model as a slow path, and can
// reactively install exact-match drop entries for attacks the rules missed.
//
// The controller keeps a compiled mirror of the last deployed rule set
// (the same internal/match engine the switch tables run), so it can
// predict the data plane's verdict for any digested packet: reactive
// installs are suppressed when the deployed rules already drop the key,
// keeping controller and switch provably in agreement.
//
// # Fault tolerance
//
// Every switch connection is owned by a supervisor goroutine running a
// four-state machine (Connecting → Ready ⇄ Degraded → Closed). The
// controller holds the desired rule state — a program epoch (bumped by
// each DeployRuleSet) plus the per-switch reactive entry log — and the
// supervisor reconciles the switch against it: when a connection dies it
// redials with jittered exponential backoff and replays the full program
// and every reactive entry, so a switch restart converges back to the
// exact desired rule set instead of silently running empty. DeployRuleSet
// therefore converges rather than errors when some switches are away:
// Ready switches are programmed synchronously, Degraded ones catch up on
// reconnect.
package controller

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"p4guard/internal/match"
	"p4guard/internal/p4"
	"p4guard/internal/p4rt"
	"p4guard/internal/packet"
	"p4guard/internal/rules"
	"p4guard/internal/telemetry"
)

// SlowPath classifies a packet with the full trained model; 0 is benign.
// *p4guard.Pipeline satisfies it.
type SlowPath interface {
	ClassifySlowPath(pkt *packet.Packet) int
	MatchOffsets() []int
}

// ConnState is one switch connection's position in the state machine.
type ConnState int32

// Connection states. Transitions: Connecting → Ready on a successful
// dial+reconcile; Ready → Degraded when the connection dies or an RPC
// fails; Degraded → Connecting on each redial attempt; anything → Closed
// on controller shutdown.
const (
	StateConnecting ConnState = iota
	StateReady
	StateDegraded
	StateClosed
)

// String names the state for logs, metrics labels, and flight events.
func (s ConnState) String() string {
	switch s {
	case StateConnecting:
		return "connecting"
	case StateReady:
		return "ready"
	case StateDegraded:
		return "degraded"
	case StateClosed:
		return "closed"
	default:
		return "unknown"
	}
}

// ConnStates lists every state, in order, for exporters that emit one
// series per state.
var ConnStates = []ConnState{StateConnecting, StateReady, StateDegraded, StateClosed}

// Config controls controller behaviour.
type Config struct {
	// Name identifies the controller in handshakes.
	Name string
	// Reactive enables exact-match drop installation for slow-path hits.
	Reactive bool
	// ReactivePriority is the priority reactive entries carry (must beat
	// compiled rules to stick; default 1<<20).
	ReactivePriority int
	// QueueDepth bounds the pending reactive-work queue (default 1024).
	QueueDepth int
	// FlightRecorder, when non-nil, receives structured events for every
	// digest round trip (classify outcome, monotonic duration), rule-set
	// deploy, connection state change, and reconciliation.
	FlightRecorder *telemetry.FlightRecorder
	// RPCTimeout bounds each p4rt call when the caller's context carries
	// no deadline (default p4rt.DefaultRPCTimeout).
	RPCTimeout time.Duration
	// ReconnectMin/ReconnectMax bound the jittered exponential backoff
	// between redial attempts (defaults 50ms and 3s).
	ReconnectMin time.Duration
	ReconnectMax time.Duration
	// Seed drives backoff jitter (default 1); fixed seeds keep soak runs
	// reproducible.
	Seed int64
	// Dialer overrides the transport dialer (fault injection in tests).
	Dialer p4rt.Dialer
}

// Option mutates a Config before the controller starts; the functional-
// options surface of New.
type Option func(*Config)

// WithFlightRecorder wires the control-plane black box.
func WithFlightRecorder(fr *telemetry.FlightRecorder) Option {
	return func(c *Config) { c.FlightRecorder = fr }
}

// WithReactive toggles reactive exact-drop installation.
func WithReactive(on bool) Option {
	return func(c *Config) { c.Reactive = on }
}

// WithRPCTimeout sets the per-RPC deadline used when a call context has
// none.
func WithRPCTimeout(d time.Duration) Option {
	return func(c *Config) { c.RPCTimeout = d }
}

// WithReconnectBackoff bounds the jittered exponential redial backoff.
func WithReconnectBackoff(min, max time.Duration) Option {
	return func(c *Config) { c.ReconnectMin, c.ReconnectMax = min, max }
}

// WithSeed fixes the backoff-jitter RNG seed.
func WithSeed(seed int64) Option {
	return func(c *Config) { c.Seed = seed }
}

// WithDialer substitutes the transport dialer (internal/faultnet).
func WithDialer(d p4rt.Dialer) Option {
	return func(c *Config) { c.Dialer = d }
}

// Stats counts controller activity.
type Stats struct {
	DigestsProcessed int `json:"digests_processed"`
	SlowPathAttacks  int `json:"slow_path_attacks"`
	SlowPathBenign   int `json:"slow_path_benign"`
	ReactiveInstalls int `json:"reactive_installs"`
	// MirrorSuppressed counts reactive installs skipped because the
	// deployment mirror proved the data plane already drops the key.
	MirrorSuppressed int `json:"mirror_suppressed"`
	// Deploys counts successful DeployRuleSet calls; DeployedRules the
	// rows shipped by the most recent one.
	Deploys       int `json:"deploys"`
	DeployedRules int `json:"deployed_rules"`
	// DroppedBatches counts digest batches discarded because the work
	// queue was full (backpressure on the p4rt read loop).
	DroppedBatches int `json:"dropped_batches"`
	// Reconnects counts successful redials after a connection died;
	// Reconciles counts desired-state replays onto a switch (initial
	// connect included); ReplayedEntries the reactive entries re-installed
	// by those replays.
	Reconnects      int `json:"reconnects"`
	Reconciles      int `json:"reconciles"`
	ReplayedEntries int `json:"replayed_entries"`
}

// String renders the stats in the key=value form p4guard-ctl prints.
func (s Stats) String() string {
	return fmt.Sprintf("digests=%d slow_benign=%d slow_attack=%d reactive_installs=%d suppressed=%d deploys=%d reconnects=%d reconciles=%d",
		s.DigestsProcessed, s.SlowPathBenign, s.SlowPathAttacks, s.ReactiveInstalls, s.MirrorSuppressed, s.Deploys, s.Reconnects, s.Reconciles)
}

// desired is the controller's intended rule state: what every switch
// should be running. The epoch increments on each DeployRuleSet; the
// reconciler compares a switch's applied epoch (and reactive watermark)
// against it and replays the difference.
type desired struct {
	valid bool
	epoch uint64
	prog  p4rt.Program
}

// Controller manages one or more switch connections.
type Controller struct {
	cfg   Config
	model SlowPath

	ctx    context.Context // cancelled by Close; gates every supervisor
	cancel context.CancelFunc

	mu      sync.Mutex
	conns   map[string]*swConn
	desired desired
	seen    map[string]bool // reactive keys already installed
	mirror  *match.Compiled // compiled copy of the last deployed rule set
	stats   Stats
	closed  bool

	work     chan work
	workerWg sync.WaitGroup // digest worker
	superWg  sync.WaitGroup // connection supervisors
}

type work struct {
	addr string
	pkts []p4rt.WirePacket
}

// swConn is one supervised switch connection. opMu serializes RPC-bearing
// operations (reconcile, deploy push, reactive install) against the
// supervisor's replay, so the desired-state log is applied in order.
type swConn struct {
	addr  string
	state atomic.Int32

	opMu            sync.Mutex
	client          *p4rt.Client // nil while down
	name            string       // switch name from the last handshake
	reactive        []p4rt.WireEntry
	appliedEpoch    uint64
	appliedReactive int

	reconnects atomic.Uint64
	reconciles atomic.Uint64
	replayed   atomic.Uint64
	rng        *rand.Rand // jitter; supervisor goroutine only
}

func (sc *swConn) setState(s ConnState) { sc.state.Store(int32(s)) }

// State returns the connection's current position in the state machine.
func (sc *swConn) State() ConnState { return ConnState(sc.state.Load()) }

// New builds a controller around a trained slow-path model. Options are
// applied over cfg, so callers mix the struct and functional styles.
func New(model SlowPath, cfg Config, opts ...Option) *Controller {
	for _, opt := range opts {
		opt(&cfg)
	}
	if cfg.Name == "" {
		cfg.Name = "p4guard-controller"
	}
	if cfg.ReactivePriority <= 0 {
		cfg.ReactivePriority = 1 << 20
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 1024
	}
	if cfg.RPCTimeout <= 0 {
		cfg.RPCTimeout = p4rt.DefaultRPCTimeout
	}
	if cfg.ReconnectMin <= 0 {
		cfg.ReconnectMin = 50 * time.Millisecond
	}
	if cfg.ReconnectMax < cfg.ReconnectMin {
		cfg.ReconnectMax = 3 * time.Second
		if cfg.ReconnectMax < cfg.ReconnectMin {
			cfg.ReconnectMax = cfg.ReconnectMin
		}
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	ctx, cancel := context.WithCancel(context.Background())
	c := &Controller{
		cfg:    cfg,
		model:  model,
		ctx:    ctx,
		cancel: cancel,
		conns:  make(map[string]*swConn),
		seen:   make(map[string]bool),
		work:   make(chan work, cfg.QueueDepth),
	}
	c.workerWg.Add(1)
	go func() {
		defer c.workerWg.Done()
		c.worker()
	}()
	return c
}

// dialOpts builds the client options every dial uses.
func (c *Controller) dialOpts() []p4rt.ClientOption {
	opts := []p4rt.ClientOption{p4rt.WithRPCTimeout(c.cfg.RPCTimeout)}
	if c.cfg.Dialer != nil {
		opts = append(opts, p4rt.WithDialer(c.cfg.Dialer))
	}
	return opts
}

// recordState logs a state transition to the flight recorder.
func (c *Controller) recordState(sc *swConn, s ConnState, extra map[string]any) {
	sc.setState(s)
	if fr := c.cfg.FlightRecorder; fr != nil {
		fields := map[string]any{"switch": sc.addr, "state": s.String()}
		for k, v := range extra {
			fields[k] = v
		}
		fr.Record("conn_state", fields)
	}
}

// Connect dials a switch agent and brings it to Ready (reconciling any
// already-deployed rule state) before returning. The initial dial is
// bounded by ctx and fails fast — no background retry — so callers learn
// about bad addresses immediately; after the first success a supervisor
// owns the connection and redials on every failure until Close. Digest
// handling runs on the controller's worker goroutine, so the p4rt read
// loop is never blocked by reactive RPCs.
func (c *Controller) Connect(ctx context.Context, addr string) error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return fmt.Errorf("controller: closed")
	}
	if _, dup := c.conns[addr]; dup {
		c.mu.Unlock()
		return fmt.Errorf("controller: already connected to %s", addr)
	}
	sc := &swConn{
		addr: addr,
		rng:  rand.New(rand.NewSource(c.cfg.Seed ^ int64(len(c.conns)+1)*0x9E3779B9)),
	}
	sc.setState(StateConnecting)
	c.conns[addr] = sc
	c.mu.Unlock()

	cl, err := p4rt.DialContext(ctx, addr, c.cfg.Name, func(pkts []p4rt.WirePacket) {
		c.enqueue(addr, pkts)
	}, c.dialOpts()...)
	if err != nil {
		c.dropConn(addr)
		return fmt.Errorf("controller: connect %s: %w", addr, err)
	}
	sc.opMu.Lock()
	sc.client = cl
	sc.name = cl.ServerName()
	if err := c.reconcileLocked(ctx, sc); err != nil {
		sc.client = nil
		sc.opMu.Unlock()
		_ = cl.Close()
		c.dropConn(addr)
		return fmt.Errorf("controller: connect %s: %w", addr, err)
	}
	sc.opMu.Unlock()
	c.recordState(sc, StateReady, map[string]any{"name": cl.ServerName()})
	if fr := c.cfg.FlightRecorder; fr != nil {
		fr.Record("connect", map[string]any{"switch": addr, "name": cl.ServerName()})
	}
	c.superWg.Add(1)
	go func() {
		defer c.superWg.Done()
		c.supervise(sc, cl)
	}()
	return nil
}

func (c *Controller) dropConn(addr string) {
	c.mu.Lock()
	delete(c.conns, addr)
	c.mu.Unlock()
}

// supervise owns one connection after its initial success: it waits for
// the connection to die, then runs the redial/reconcile loop until the
// controller closes.
func (c *Controller) supervise(sc *swConn, cl *p4rt.Client) {
	for {
		select {
		case <-c.ctx.Done():
			if cl != nil {
				_ = cl.Close()
			}
			c.recordState(sc, StateClosed, nil)
			return
		case <-cl.Done():
			_ = cl.Close()
			sc.opMu.Lock()
			sc.client = nil
			sc.opMu.Unlock()
			c.recordState(sc, StateDegraded, nil)
		}
		next, err := c.redial(sc)
		if err != nil {
			c.recordState(sc, StateClosed, nil)
			return
		}
		cl = next
	}
}

// redial reconnects with jittered exponential backoff until dial AND
// reconcile both succeed, or the controller closes. A restarted switch
// comes back empty, so the applied watermarks are reset before the
// reconcile: the full program and every reactive entry are replayed.
func (c *Controller) redial(sc *swConn) (*p4rt.Client, error) {
	backoff := c.cfg.ReconnectMin
	for attempt := 1; ; attempt++ {
		select {
		case <-c.ctx.Done():
			return nil, c.ctx.Err()
		default:
		}
		c.recordState(sc, StateConnecting, map[string]any{"attempt": attempt})
		dctx, cancel := context.WithTimeout(c.ctx, c.cfg.RPCTimeout)
		cl, err := p4rt.DialContext(dctx, sc.addr, c.cfg.Name, func(pkts []p4rt.WirePacket) {
			c.enqueue(sc.addr, pkts)
		}, c.dialOpts()...)
		cancel()
		if err == nil {
			sc.opMu.Lock()
			sc.client = cl
			sc.name = cl.ServerName()
			// The peer may be a fresh process: assume nothing survived.
			sc.appliedEpoch = 0
			sc.appliedReactive = 0
			rerr := c.reconcileLocked(c.ctx, sc)
			if rerr != nil {
				sc.client = nil
			}
			sc.opMu.Unlock()
			if rerr == nil {
				sc.reconnects.Add(1)
				c.bumpStat(func(s *Stats) { s.Reconnects++ })
				c.recordState(sc, StateReady, map[string]any{"attempt": attempt, "name": cl.ServerName()})
				return cl, nil
			}
			_ = cl.Close()
			if errors.Is(rerr, context.Canceled) {
				return nil, rerr
			}
		}
		c.recordState(sc, StateDegraded, map[string]any{"attempt": attempt})
		// Full jitter over [backoff/2, backoff): desynchronizes herds of
		// controllers hammering a rebooting switch.
		d := backoff/2 + time.Duration(sc.rng.Int63n(int64(backoff/2)+1))
		select {
		case <-c.ctx.Done():
			return nil, c.ctx.Err()
		case <-time.After(d):
		}
		backoff *= 2
		if backoff > c.cfg.ReconnectMax {
			backoff = c.cfg.ReconnectMax
		}
	}
}

// reconcileLocked replays the desired state the switch is missing: the
// current program when its epoch is stale (which wipes the table, so all
// reactive entries follow), otherwise just the un-replayed reactive tail.
// Callers hold sc.opMu and have sc.client non-nil.
func (c *Controller) reconcileLocked(ctx context.Context, sc *swConn) error {
	c.mu.Lock()
	want := c.desired
	c.mu.Unlock()

	cl := sc.client
	replayedProg := false
	var replayedEntries int
	if want.valid && sc.appliedEpoch < want.epoch {
		if _, err := cl.ProgramDetector(ctx, want.prog); err != nil {
			return fmt.Errorf("reconcile %s: program epoch %d: %w", sc.addr, want.epoch, err)
		}
		sc.appliedEpoch = want.epoch
		sc.appliedReactive = 0 // Program replaced the table: replay all
		replayedProg = true
	}
	for sc.appliedReactive < len(sc.reactive) {
		e := sc.reactive[sc.appliedReactive]
		if _, err := cl.WriteEntry(ctx, e); err != nil {
			return fmt.Errorf("reconcile %s: reactive entry %d/%d: %w", sc.addr, sc.appliedReactive+1, len(sc.reactive), err)
		}
		sc.appliedReactive++
		replayedEntries++
	}
	sc.reconciles.Add(1)
	c.bumpStat(func(s *Stats) {
		s.Reconciles++
		s.ReplayedEntries += replayedEntries
	})
	sc.replayed.Add(uint64(replayedEntries))
	if fr := c.cfg.FlightRecorder; fr != nil {
		fr.Record("reconcile", map[string]any{
			"switch":   sc.addr,
			"epoch":    want.epoch,
			"program":  replayedProg,
			"reactive": replayedEntries,
		})
	}
	return nil
}

func (c *Controller) bumpStat(fn func(*Stats)) {
	c.mu.Lock()
	fn(&c.stats)
	c.mu.Unlock()
}

func (c *Controller) enqueue(addr string, pkts []p4rt.WirePacket) {
	select {
	case c.work <- work{addr: addr, pkts: pkts}:
	default:
		// Queue full: drop the batch rather than block the read loop —
		// and count the loss, it is the controller's overload signal.
		c.bumpStat(func(s *Stats) { s.DroppedBatches++ })
	}
}

// worker drains digest batches: slow-path classify, optionally react.
func (c *Controller) worker() {
	for w := range c.work {
		for _, wp := range w.pkts {
			c.handleDigest(w.addr, wp)
		}
	}
}

// handleDigest runs one digest through the slow path and the reactive
// decision, tracing the whole round trip as a flight-recorder event:
// kind "digest" with the switch address, the slow-path class, the final
// decision, and the monotonic duration of classify+decide+install.
func (c *Controller) handleDigest(addr string, wp p4rt.WirePacket) {
	fr := c.cfg.FlightRecorder
	var start int64
	if fr != nil {
		start = fr.Now().Nanoseconds()
	}
	decision := "attack"

	pkt := wp.ToPacket()
	class := c.model.ClassifySlowPath(pkt)

	c.mu.Lock()
	c.stats.DigestsProcessed++
	var sc *swConn
	var install bool
	var key []byte
	switch {
	case class == 0:
		c.stats.SlowPathBenign++
		decision = "benign"
	default:
		c.stats.SlowPathAttacks++
		if c.cfg.Reactive {
			// The deployment mirror runs the same compiled engine as the
			// switch table: when it already drops this packet the digest
			// is stale (raced a deploy) and an exact-match entry would
			// only waste TCAM.
			if m := c.mirror; m != nil {
				if mc, matched := m.Classify(pkt); matched && rules.ActionForClass(mc) == rules.ActionDrop {
					c.stats.MirrorSuppressed++
					decision = "suppressed"
					break
				}
			}
			key = rules.ExtractKey(pkt, c.model.MatchOffsets())
			if c.seen[string(key)] {
				decision = "duplicate"
				break
			}
			c.seen[string(key)] = true
			sc = c.conns[addr]
			install = sc != nil
		}
	}
	c.mu.Unlock()

	if install {
		// Exact match expressed as a degenerate range (lo==hi). The entry
		// joins the switch's desired reactive log first, so even if the
		// write races a connection failure the reconciler replays it.
		entry := p4rt.WireEntry{
			Priority: c.cfg.ReactivePriority,
			Lo:       key,
			Hi:       append([]byte(nil), key...),
			Action:   p4rt.FormatAction(p4.ActionDrop),
			Class:    class,
		}
		sc.opMu.Lock()
		sc.reactive = append(sc.reactive, entry)
		cl := sc.client
		var err error
		if cl == nil {
			err = p4rt.ErrConnClosed
		} else {
			_, err = cl.WriteEntry(c.ctx, entry)
			if err == nil {
				sc.appliedReactive++
			}
		}
		sc.opMu.Unlock()
		if err == nil {
			decision = "install"
			c.bumpStat(func(s *Stats) { s.ReactiveInstalls++ })
		} else {
			// The entry stays in the desired log; the supervisor replays
			// it once the switch is back.
			decision = "install_deferred"
		}
	}
	if fr != nil {
		fr.Record("digest", map[string]any{
			"switch":   addr,
			"class":    class,
			"decision": decision,
			"dur_ns":   fr.Now().Nanoseconds() - start,
		})
	}
}

// DeployRuleSet records the compiled rules as the controller's desired
// state (bumping the program epoch) and programs every Ready switch
// synchronously; missAction is the detector's default (digest to keep the
// slow path in the loop, or allow to run open-loop). Switches that are
// Degraded or mid-reconnect are not an error: their supervisors replay
// the new epoch on reconnect, so the fleet converges to this rule set.
// The call fails only on a rule set the matcher rejects, a cancelled or
// expired ctx (typed: context.Canceled / p4rt.ErrTimeout), or when no
// switch was ever connected.
func (c *Controller) DeployRuleSet(ctx context.Context, rs *rules.RuleSet, missAction p4.Action) error {
	if ctx == nil {
		ctx = context.Background()
	}
	// Compile first: a rule set the unified matcher rejects must never
	// reach a switch, and the compiled mirror is what the reactive path
	// consults for deployed coverage.
	mirror, err := match.Compile(rs)
	if err != nil {
		return fmt.Errorf("controller: %w", err)
	}
	prog, err := p4rt.ProgramFromRuleSet(rs, missAction)
	if err != nil {
		return err
	}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return fmt.Errorf("controller: closed")
	}
	c.desired.valid = true
	c.desired.epoch++
	c.desired.prog = prog
	epoch := c.desired.epoch
	conns := make([]*swConn, 0, len(c.conns))
	for _, sc := range c.conns {
		conns = append(conns, sc)
	}
	c.mirror = mirror
	c.mu.Unlock()
	if len(conns) == 0 {
		return fmt.Errorf("controller: no connected switches")
	}

	var start int64
	if fr := c.cfg.FlightRecorder; fr != nil {
		start = fr.Now().Nanoseconds()
	}
	applied := 0
	for _, sc := range conns {
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("controller: deploy epoch %d: %w", epoch, err)
		}
		sc.opMu.Lock()
		if sc.client == nil || sc.appliedEpoch >= epoch {
			// Down (the supervisor will replay this epoch on reconnect)
			// or already converged past us by a concurrent deploy.
			sc.opMu.Unlock()
			continue
		}
		err := c.reconcileLocked(ctx, sc)
		sc.opMu.Unlock()
		switch {
		case err == nil:
			applied++
		case errors.Is(err, context.Canceled) || errors.Is(err, p4rt.ErrTimeout) || errors.Is(err, context.DeadlineExceeded):
			return fmt.Errorf("controller: deploy to %s: %w", sc.addr, err)
		case errors.Is(err, p4rt.ErrRejected):
			// The switch refused the program: converging is impossible,
			// and retrying would loop. Surface it.
			return fmt.Errorf("controller: deploy to %s: %w", sc.addr, err)
		default:
			// Transport failure mid-deploy: close the client so the
			// supervisor notices and replays once the switch returns.
			if cl := sc.clientSnapshot(); cl != nil {
				_ = cl.Close()
			}
		}
	}
	c.bumpStat(func(s *Stats) {
		s.Deploys++
		s.DeployedRules = len(prog.Entries)
	})
	if fr := c.cfg.FlightRecorder; fr != nil {
		fr.Record("deploy", map[string]any{
			"rules":    len(prog.Entries),
			"epoch":    epoch,
			"switches": len(conns),
			"applied":  applied,
			"dur_ns":   fr.Now().Nanoseconds() - start,
		})
	}
	return nil
}

func (sc *swConn) clientSnapshot() *p4rt.Client {
	sc.opMu.Lock()
	defer sc.opMu.Unlock()
	return sc.client
}

// RegisterTelemetry exports the controller's counters through a metrics
// registry; values are read from the stats snapshot at scrape time. Per-
// switch connection state is exported one-hot as
// p4guard_ctl_conn_state{switch,state}, so dashboards alert on any switch
// leaving ready.
func (c *Controller) RegisterTelemetry(reg *telemetry.Registry) {
	ctl := telemetry.Label{Key: "controller", Value: c.cfg.Name}
	stat := func(pick func(Stats) int) func() float64 {
		return func() float64 { return float64(pick(c.Stats())) }
	}
	reg.CounterFunc("p4guard_ctl_digests_processed_total", "Digests classified on the slow path.",
		stat(func(s Stats) int { return s.DigestsProcessed }), ctl)
	reg.CounterFunc("p4guard_ctl_slowpath_total", "Slow-path verdicts by outcome.",
		stat(func(s Stats) int { return s.SlowPathBenign }), ctl, telemetry.Label{Key: "outcome", Value: "benign"})
	reg.CounterFunc("p4guard_ctl_slowpath_total", "Slow-path verdicts by outcome.",
		stat(func(s Stats) int { return s.SlowPathAttacks }), ctl, telemetry.Label{Key: "outcome", Value: "attack"})
	reg.CounterFunc("p4guard_ctl_reactive_installs_total", "Reactive drop entries installed.",
		stat(func(s Stats) int { return s.ReactiveInstalls }), ctl)
	reg.CounterFunc("p4guard_ctl_mirror_suppressed_total", "Reactive installs suppressed by the deployment mirror.",
		stat(func(s Stats) int { return s.MirrorSuppressed }), ctl)
	reg.CounterFunc("p4guard_ctl_deploys_total", "Successful rule-set deployments.",
		stat(func(s Stats) int { return s.Deploys }), ctl)
	reg.GaugeFunc("p4guard_ctl_deployed_rules", "Rules shipped by the most recent deployment.",
		stat(func(s Stats) int { return s.DeployedRules }), ctl)
	reg.CounterFunc("p4guard_ctl_dropped_batches_total", "Digest batches dropped by work-queue backpressure.",
		stat(func(s Stats) int { return s.DroppedBatches }), ctl)
	reg.CounterFunc("p4guard_ctl_reconnects_total", "Successful switch redials after a connection died.",
		stat(func(s Stats) int { return s.Reconnects }), ctl)
	reg.CounterFunc("p4guard_ctl_reconciles_total", "Desired-state replays onto a switch.",
		stat(func(s Stats) int { return s.Reconciles }), ctl)
	reg.CounterFunc("p4guard_ctl_replayed_entries_total", "Reactive entries re-installed by reconciliation.",
		stat(func(s Stats) int { return s.ReplayedEntries }), ctl)
	reg.CollectFunc("p4guard_ctl_conn_state", "Per-switch connection state (one-hot).", "gauge",
		func(emit func([]telemetry.Label, float64)) {
			for addr, st := range c.States() {
				for _, s := range ConnStates {
					v := 0.0
					if s == st {
						v = 1
					}
					emit([]telemetry.Label{ctl,
						{Key: "switch", Value: addr},
						{Key: "state", Value: s.String()},
					}, v)
				}
			}
		})
}

// Stats returns a snapshot of controller counters.
func (c *Controller) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// States returns each connected switch's current connection state, keyed
// by address.
func (c *Controller) States() map[string]ConnState {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]ConnState, len(c.conns))
	for addr, sc := range c.conns {
		out[addr] = sc.State()
	}
	return out
}

// Switches returns the names of connected switches.
func (c *Controller) Switches() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	names := make([]string, 0, len(c.conns))
	for _, sc := range c.conns {
		if n := sc.name; n != "" {
			names = append(names, n)
		}
	}
	return names
}

// Close disconnects every switch, stops the supervisors, and drains the
// worker. It is idempotent and leaves no goroutines behind.
func (c *Controller) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	conns := make([]*swConn, 0, len(c.conns))
	for _, sc := range c.conns {
		conns = append(conns, sc)
	}
	c.mu.Unlock()

	// Order matters: cancel (stops redials), close live clients (their
	// read loops exit, so no new digests), wait for supervisors (who may
	// hold freshly-dialed clients), and only then close the work channel
	// the read loops feed.
	c.cancel()
	var firstErr error
	for _, sc := range conns {
		if cl := sc.clientSnapshot(); cl != nil {
			if err := cl.Close(); err != nil && firstErr == nil {
				firstErr = err
			}
		}
	}
	c.superWg.Wait()
	close(c.work)
	c.workerWg.Wait()
	return firstErr
}
