package controller

import (
	"context"
	"errors"
	"fmt"
	"net"
	"runtime"
	"sort"
	"testing"
	"time"

	"p4guard/internal/faultnet"
	"p4guard/internal/p4"
	"p4guard/internal/p4rt"
	"p4guard/internal/packet"
	"p4guard/internal/rules"
	"p4guard/internal/switchsim"
)

// fastBackoff keeps redial loops tight so resilience tests finish in
// milliseconds instead of the production seconds.
func fastBackoff() []Option {
	return []Option{
		WithReconnectBackoff(2*time.Millisecond, 50*time.Millisecond),
		WithSeed(7),
		WithRPCTimeout(time.Second),
	}
}

// listenTCP binds addr, retrying briefly — restarts reuse the port the
// dead server just released.
func listenTCP(t *testing.T, addr string) net.Listener {
	t.Helper()
	var lastErr error
	for i := 0; i < 100; i++ {
		ln, err := net.Listen("tcp", addr)
		if err == nil {
			return ln
		}
		lastErr = err
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("rebind %s: %v", addr, lastErr)
	return nil
}

// desiredEntries renders the controller's intended rule state — the
// deployed program followed by the reactive log — as p4 entries with IDs
// zeroed, the canonical form for byte-identical convergence checks
// (entry IDs are allocator state, not rule state).
func desiredEntries(t *testing.T, prog p4rt.Program, reactive []p4rt.WireEntry) []p4.Entry {
	t.Helper()
	out := make([]p4.Entry, 0, len(prog.Entries)+len(reactive))
	for _, we := range append(append([]p4rt.WireEntry(nil), prog.Entries...), reactive...) {
		e, err := we.ToP4Entry()
		if err != nil {
			t.Fatal(err)
		}
		e.ID = 0
		out = append(out, e)
	}
	return out
}

// tableEntries snapshots the switch's detector table with IDs zeroed.
func tableEntries(t *testing.T, sw *switchsim.Switch) []p4.Entry {
	t.Helper()
	det, err := sw.Pipeline().Table(switchsim.DetectorTable)
	if err != nil {
		t.Fatal(err)
	}
	es := det.Entries()
	for i := range es {
		es[i].ID = 0
	}
	return es
}

// entriesEqual compares two entry sets byte-for-byte under a canonical
// order (tables publish entries priority-sorted, the desired log is in
// install order — the set, not the storage order, is the rule state).
func entriesEqual(a, b []p4.Entry) bool {
	if len(a) != len(b) {
		return false
	}
	canon := func(es []p4.Entry) []string {
		out := make([]string, len(es))
		for i, e := range es {
			out[i] = fmt.Sprintf("%+v", e)
		}
		sort.Strings(out)
		return out
	}
	ca, cb := canon(a), canon(b)
	for i := range ca {
		if ca[i] != cb[i] {
			return false
		}
	}
	return true
}

// reactiveLog copies the desired reactive entry log for one switch.
func (c *Controller) reactiveLog(addr string) []p4rt.WireEntry {
	c.mu.Lock()
	sc := c.conns[addr]
	c.mu.Unlock()
	if sc == nil {
		return nil
	}
	sc.opMu.Lock()
	defer sc.opMu.Unlock()
	return append([]p4rt.WireEntry(nil), sc.reactive...)
}

func waitGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= base {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	buf := make([]byte, 1<<20)
	t.Fatalf("goroutines leaked: %d > %d\n%s", runtime.NumGoroutine(), base,
		buf[:runtime.Stack(buf, true)])
}

// TestReconnectConvergesAfterSwitchRestart kills the switch process
// mid-run and restarts an empty one on the same address: the supervisor
// must redial, replay the program epoch and the reactive log, and leave
// the fresh switch byte-identical to the controller's desired rule state
// — all without leaking a single goroutine.
func TestReconnectConvergesAfterSwitchRestart(t *testing.T) {
	baseGoroutines := runtime.NumGoroutine() + 2 // tolerate runtime jitter

	ln := listenTCP(t, "127.0.0.1:0")
	addr := ln.Addr().String()
	sw1, err := switchsim.New("gw-r1", packet.LinkEthernet)
	if err != nil {
		t.Fatal(err)
	}
	srv1, err := p4rt.ServeListener(ln, sw1, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}

	c := New(fakeModel{}, Config{Name: "ctl-reconnect", Reactive: true}, fastBackoff()...)
	if err := c.Connect(context.Background(), addr); err != nil {
		t.Fatal(err)
	}
	rs := rules.NewRuleSet([]int{0, 1}, 0)
	rs.Add(rules.Rule{Priority: 1, Class: 1, Preds: []rules.BytePredicate{{Offset: 0, Lo: 240, Hi: 255}}})
	if err := c.DeployRuleSet(context.Background(), rs, p4.Action{Type: p4.ActionDigest}); err != nil {
		t.Fatal(err)
	}
	prog, err := p4rt.ProgramFromRuleSet(rs, p4.Action{Type: p4.ActionDigest})
	if err != nil {
		t.Fatal(err)
	}

	// Generate reactive state: two distinct slow-path attacks.
	sw1.Process(&packet.Packet{Link: packet.LinkEthernet, Bytes: []byte{200, 1}})
	sw1.Process(&packet.Packet{Link: packet.LinkEthernet, Bytes: []byte{200, 2}})
	waitFor(t, func() bool { return c.Stats().ReactiveInstalls >= 2 })

	// Kill the switch. The supervisor must notice and degrade.
	_ = srv1.Close()
	waitFor(t, func() bool {
		s := c.States()[addr]
		return s == StateDegraded || s == StateConnecting
	})

	// Restart: a fresh, empty switch process on the same address.
	ln2 := listenTCP(t, addr)
	sw2, err := switchsim.New("gw-r2", packet.LinkEthernet)
	if err != nil {
		t.Fatal(err)
	}
	srv2, err := p4rt.ServeListener(ln2, sw2, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}

	waitFor(t, func() bool {
		return c.States()[addr] == StateReady && c.Stats().Reconnects >= 1
	})
	want := desiredEntries(t, prog, c.reactiveLog(addr))
	waitFor(t, func() bool { return entriesEqual(tableEntries(t, sw2), want) })

	// The replayed state must act on the data plane: compiled rule and
	// both reactive entries all drop.
	for _, b := range [][]byte{{250, 0}, {200, 1}, {200, 2}} {
		if v := sw2.Process(&packet.Packet{Link: packet.LinkEthernet, Bytes: b}); v.Allowed {
			t.Fatalf("packet %v allowed on restarted switch", b)
		}
	}
	st := c.Stats()
	if st.Reconciles < 2 || st.ReplayedEntries < 2 {
		t.Fatalf("stats = %+v, want >=2 reconciles and >=2 replayed entries", st)
	}

	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	_ = srv2.Close()
	waitGoroutines(t, baseGoroutines)
}

// TestDeployWhileDegradedConverges: DeployRuleSet with the switch down
// must record the new desired epoch and return nil — and the supervisor
// must push that epoch when the switch comes back.
func TestDeployWhileDegradedConverges(t *testing.T) {
	ln := listenTCP(t, "127.0.0.1:0")
	addr := ln.Addr().String()
	sw1, err := switchsim.New("gw-d1", packet.LinkEthernet)
	if err != nil {
		t.Fatal(err)
	}
	srv1, err := p4rt.ServeListener(ln, sw1, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	c := New(fakeModel{}, Config{Name: "ctl-degraded"}, fastBackoff()...)
	t.Cleanup(func() { _ = c.Close() })
	if err := c.Connect(context.Background(), addr); err != nil {
		t.Fatal(err)
	}

	_ = srv1.Close()
	waitFor(t, func() bool { return c.States()[addr] != StateReady })

	rs := rules.NewRuleSet([]int{0, 1}, 0)
	rs.Add(rules.Rule{Priority: 3, Class: 1, Preds: []rules.BytePredicate{{Offset: 0, Lo: 128, Hi: 255}}})
	if err := c.DeployRuleSet(context.Background(), rs, p4.Action{Type: p4.ActionAllow}); err != nil {
		t.Fatalf("deploy while degraded errored: %v", err)
	}

	ln2 := listenTCP(t, addr)
	sw2, err := switchsim.New("gw-d2", packet.LinkEthernet)
	if err != nil {
		t.Fatal(err)
	}
	srv2, err := p4rt.ServeListener(ln2, sw2, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = srv2.Close() })

	prog, err := p4rt.ProgramFromRuleSet(rs, p4.Action{Type: p4.ActionAllow})
	if err != nil {
		t.Fatal(err)
	}
	want := desiredEntries(t, prog, nil)
	waitFor(t, func() bool { return entriesEqual(tableEntries(t, sw2), want) })
	if v := sw2.Process(&packet.Packet{Link: packet.LinkEthernet, Bytes: []byte{200, 0}}); v.Allowed {
		t.Fatal("deferred deploy inactive on restarted switch")
	}
}

// mute accepts and never handshakes, so Connect blocks on its context.
func mute(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = ln.Close() })
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			defer func() { _ = c.Close() }()
		}
	}()
	return ln.Addr().String()
}

// TestContextCancellationIsTypedAndPrompt: cancelling or expiring the
// caller's context must return within the deadline with the typed error,
// for both Connect and DeployRuleSet.
func TestContextCancellationIsTypedAndPrompt(t *testing.T) {
	addr := mute(t)
	c := New(fakeModel{}, Config{Name: "ctl-cancel"}, fastBackoff()...)
	t.Cleanup(func() { _ = c.Close() })

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	if err := c.Connect(ctx, addr); !errors.Is(err, p4rt.ErrTimeout) {
		t.Fatalf("connect err = %v, want ErrTimeout", err)
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Fatalf("connect returned in %v, want ~50ms", d)
	}

	cctx, ccancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		ccancel()
	}()
	if err := c.Connect(cctx, addr); !errors.Is(err, context.Canceled) {
		t.Fatalf("connect err = %v, want context.Canceled", err)
	}

	// A real switch so DeployRuleSet reaches the ctx check.
	_, live := startSwitch(t)
	if err := c.Connect(context.Background(), live); err != nil {
		t.Fatal(err)
	}
	done, dcancel := context.WithCancel(context.Background())
	dcancel()
	rs := rules.NewRuleSet([]int{0, 1}, 0)
	if err := c.DeployRuleSet(done, rs, p4.Action{Type: p4.ActionAllow}); !errors.Is(err, context.Canceled) {
		t.Fatalf("deploy err = %v, want context.Canceled", err)
	}
}

// TestFaultInjectionSoak drives the full control loop through a seeded
// storm of connection resets, torn frames, and added latency, then heals
// the network and requires exact convergence: the restarted-and-battered
// switch ends up byte-identical to the controller's desired rule state,
// the digest queue accounting balances, and no goroutines leak.
func TestFaultInjectionSoak(t *testing.T) {
	baseGoroutines := runtime.NumGoroutine() + 2

	fn := faultnet.New(faultnet.Config{
		Seed:             42,
		ResetProb:        0.02,
		PartialWriteProb: 0.02,
		LatencyMin:       0,
		LatencyMax:       time.Millisecond,
	})
	ln := listenTCP(t, "127.0.0.1:0")
	addr := ln.Addr().String()
	sw, err := switchsim.NewWithDigestCapacity("gw-soak", packet.LinkEthernet, 512)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := p4rt.ServeListener(fn.Listener(ln), sw, time.Millisecond,
		p4rt.WithSendTimeout(500*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}

	c := New(fakeModel{}, Config{Name: "ctl-soak", Reactive: true},
		WithDialer(fn.Dialer(nil)),
		WithReconnectBackoff(2*time.Millisecond, 50*time.Millisecond),
		WithSeed(42),
		WithRPCTimeout(500*time.Millisecond))

	// The initial connect races the fault schedule; retry until one
	// handshake survives.
	var connectErr error
	for i := 0; i < 50; i++ {
		if connectErr = c.Connect(context.Background(), addr); connectErr == nil {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if connectErr != nil {
		t.Fatalf("connect never survived the fault schedule: %v", connectErr)
	}

	rs := rules.NewRuleSet([]int{0, 1}, 0)
	rs.Add(rules.Rule{Priority: 1, Class: 1, Preds: []rules.BytePredicate{{Offset: 0, Lo: 250, Hi: 255}}})
	var deployErr error
	for i := 0; i < 50; i++ {
		if deployErr = c.DeployRuleSet(context.Background(), rs, p4.Action{Type: p4.ActionDigest}); deployErr == nil {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if deployErr != nil {
		t.Fatalf("deploy never survived the fault schedule: %v", deployErr)
	}
	prog, err := p4rt.ProgramFromRuleSet(rs, p4.Action{Type: p4.ActionDigest})
	if err != nil {
		t.Fatal(err)
	}

	// Soak: a stream of distinct slow-path attacks while the link chews
	// connections. Installs that race a reset are deferred to the
	// reconciler; the desired log keeps them all.
	for i := 0; i < 40; i++ {
		sw.Process(&packet.Packet{Link: packet.LinkEthernet, Bytes: []byte{200, byte(i)}})
		time.Sleep(2 * time.Millisecond)
	}

	// Heal and require exact convergence with the desired state.
	fn.Heal()
	waitFor(t, func() bool { return c.States()[addr] == StateReady })
	// One more attack end-to-end proves the healed loop is live.
	sw.Process(&packet.Packet{Link: packet.LinkEthernet, Bytes: []byte{201, 77}})
	waitFor(t, func() bool {
		for _, e := range c.reactiveLog(addr) {
			if len(e.Lo) == 2 && e.Lo[0] == 201 && e.Lo[1] == 77 {
				return true
			}
		}
		return false
	})
	deadline := time.Now().Add(10 * time.Second)
	for {
		want := desiredEntries(t, prog, c.reactiveLog(addr))
		if entriesEqual(tableEntries(t, sw), want) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("switch never converged: table has %d entries, desired %d (stats %+v, faults %+v)",
				len(tableEntries(t, sw)), len(want), c.Stats(), fn.Stats())
		}
		time.Sleep(5 * time.Millisecond)
	}

	// The soak must have actually exercised the fault machinery.
	if fs := fn.Stats(); fs.Resets == 0 && fs.PartialWrites == 0 {
		t.Fatalf("fault schedule injected nothing: %+v", fs)
	}

	// Digest-queue accounting balances even across controller outages.
	ds := sw.DigestQueueStats()
	if ds.Offered != ds.Drained+ds.Dropped+uint64(ds.Depth) {
		t.Fatalf("digest invariant violated: offered=%d drained=%d dropped=%d depth=%d",
			ds.Offered, ds.Drained, ds.Dropped, ds.Depth)
	}
	if ds.Queued != ds.Drained+uint64(ds.Depth) {
		t.Fatalf("legacy digest invariant violated: %+v", ds)
	}

	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	_ = srv.Close()
	waitGoroutines(t, baseGoroutines)
}
