package controller

import (
	"io"
	"testing"

	"p4guard/internal/drift"
	"p4guard/internal/packet"
	"p4guard/internal/telemetry"
)

// BenchmarkFleetDriftScrape measures one /metrics render of the drift
// metric families — per-shard and fleet drift scores, observation
// counters, per-feature PSI gauges, crossing counters — over an armed
// 4-shard monitor with populated sketches. This is the recurring cost a
// Prometheus scrape adds while drift tracking is on; scripts/bench.sh
// snapshots it into BENCH_8.json.
func BenchmarkFleetDriftScrape(b *testing.B) {
	offs := []int{0, 1}
	base := drift.NewBuilder(offs, 0)
	for i := 0; i < 1024; i++ {
		base.Observe(&packet.Packet{Link: packet.LinkEthernet, Bytes: []byte{byte(i % 64), byte(i % 16)}},
			i%3, float64(i%100)/1024)
	}
	mon := drift.NewMonitor()
	if err := mon.Arm(drift.MonitorConfig{Baseline: base.Profile(), Shards: 4, ScoreEvery: 32}); err != nil {
		b.Fatal(err)
	}
	c := New(fleetModel{}, Config{Name: "drift-bench", Drift: mon})
	defer func() { _ = c.Close() }()
	reg := telemetry.NewRegistry()
	c.RegisterFleetTelemetry(reg)

	da := mon.Armed()
	for i := 0; i < 2048; i++ {
		da.ObservePacket(i%4, &packet.Packet{Link: packet.LinkEthernet, Bytes: []byte{byte(i % 64), byte(i % 16)}},
			i%3, float64(i%100)/1024)
	}

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := reg.WritePrometheus(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(da.FleetScore(), "fleet_score")
}
