package telemetry

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// Handler builds the observability mux: Prometheus exposition on
// /metrics, a JSON flight-recorder dump on /debug/vars, and the standard
// pprof profiles under /debug/pprof/. reg and fr may each be nil, which
// disables the corresponding endpoint.
func Handler(reg *Registry, fr *FlightRecorder) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		if reg == nil {
			http.Error(w, "no metrics registry", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = reg.WritePrometheus(w)
	})
	mux.HandleFunc("/debug/vars", func(w http.ResponseWriter, r *http.Request) {
		if fr == nil {
			http.Error(w, "no flight recorder", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		_ = fr.WriteJSON(w)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Server serves the observability endpoints on its own listener.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// NewServer starts serving Handler(reg, fr) on addr (":0" picks a free
// port).
func NewServer(addr string, reg *Registry, fr *FlightRecorder) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("telemetry: listen %s: %w", addr, err)
	}
	s := &Server{
		ln:  ln,
		srv: &http.Server{Handler: Handler(reg, fr), ReadHeaderTimeout: 5 * time.Second},
	}
	go func() { _ = s.srv.Serve(ln) }()
	return s, nil
}

// Addr returns the bound listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Shutdown stops accepting new connections and waits for in-flight
// requests (a /metrics scrape mid-exposition, a pprof profile being
// written) to complete, up to the context deadline. The CLIs call this
// on exit so a scraper never sees a half-written exposition.
func (s *Server) Shutdown(ctx context.Context) error {
	err := s.srv.Shutdown(ctx)
	if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
		// Drain window elapsed: hard-close whatever is left so the
		// process can exit.
		_ = s.srv.Close()
	}
	return err
}

// Close stops the server and its listener immediately, aborting
// in-flight requests. Prefer Shutdown on orderly exits.
func (s *Server) Close() error { return s.srv.Close() }
