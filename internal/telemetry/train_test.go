package telemetry

import (
	"context"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

func scrape(t *testing.T, addr string) string {
	t.Helper()
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

// TestTrainGaugesLiveScrape simulates a training run feeding the gauges
// and scrapes /metrics between epochs: the exposition must reflect the
// most recent observation for each stage while the run is in flight.
func TestTrainGaugesLiveScrape(t *testing.T) {
	reg := NewRegistry()
	g := NewTrainGauges(reg)
	ts, err := NewServer("127.0.0.1:0", reg, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer ts.Close()

	g.Observe("stage1", 0, 2.5, 0.5, 1.25)
	body := scrape(t, ts.Addr())
	for _, want := range []string{
		`p4guard_train_epoch{stage="stage1"} 0`,
		`p4guard_train_loss{stage="stage1"} 2.5`,
		`p4guard_train_accuracy{stage="stage1"} 0.5`,
		`p4guard_train_grad_norm{stage="stage1"} 1.25`,
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("scrape missing %q:\n%s", want, body)
		}
	}

	// Mid-run: later epochs and a second stage overwrite/extend.
	g.Observe("stage1", 7, 0.125, 0.875, 0.5)
	g.Observe("stage2", 1, 1.5, 0.75, 2)
	body = scrape(t, ts.Addr())
	for _, want := range []string{
		`p4guard_train_epoch{stage="stage1"} 7`,
		`p4guard_train_loss{stage="stage1"} 0.125`,
		`p4guard_train_epoch{stage="stage2"} 1`,
		`p4guard_train_loss{stage="stage2"} 1.5`,
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("scrape missing %q:\n%s", want, body)
		}
	}
	if strings.Contains(body, `p4guard_train_loss{stage="stage1"} 2.5`) {
		t.Fatal("stale loss value still exposed")
	}
}

func TestFloatGauge(t *testing.T) {
	var g FloatGauge
	if g.Value() != 0 {
		t.Fatalf("zero value = %v", g.Value())
	}
	g.Set(-3.75)
	if g.Value() != -3.75 {
		t.Fatalf("Value = %v", g.Value())
	}
}

// TestServerShutdownGraceful: Shutdown must wait for an in-flight scrape
// and then refuse new connections.
func TestServerShutdownGraceful(t *testing.T) {
	reg := NewRegistry()
	reg.Gauge("g", "help").Set(1)
	ts, err := NewServer("127.0.0.1:0", reg, nil)
	if err != nil {
		t.Fatal(err)
	}
	addr := ts.Addr()
	// A scrape completes fine before shutdown.
	_ = scrape(t, addr)
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if err := ts.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if _, err := http.Get("http://" + addr + "/metrics"); err == nil {
		t.Fatal("server still accepting connections after Shutdown")
	}
}
