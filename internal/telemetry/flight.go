package telemetry

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// Event is one structured control-plane event in the flight recorder.
// At is a wall-clock-free monotonic offset from the recorder's start, so
// event timings are immune to clock steps and comparable across events.
type Event struct {
	Seq    uint64         `json:"seq"`
	AtNs   int64          `json:"at_ns"`
	Kind   string         `json:"kind"`
	Fields map[string]any `json:"fields,omitempty"`
}

// FlightRecorder is a bounded ring buffer of Events: writes never block
// longer than a short mutex hold, and once the ring is full the oldest
// events are overwritten. It is the control-plane black box — cheap
// enough to leave on in production, dumped as JSON via /debug/vars when
// something goes wrong.
type FlightRecorder struct {
	start time.Time

	mu   sync.Mutex
	ring []Event
	next uint64 // total events ever recorded; ring slot is (seq-1)%cap
}

// NewFlightRecorder builds a recorder keeping the last capacity events
// (1024 when capacity <= 0).
func NewFlightRecorder(capacity int) *FlightRecorder {
	if capacity <= 0 {
		capacity = 1024
	}
	return &FlightRecorder{start: time.Now(), ring: make([]Event, capacity)}
}

// Now returns the monotonic offset since the recorder started; callers
// use it to compute durations stored in event fields.
func (f *FlightRecorder) Now() time.Duration { return time.Since(f.start) }

// Record appends an event and returns its sequence number (1-based).
// fields is deep-copied before it is stored, so the caller is free to
// reuse or mutate the map afterwards without corrupting recorded
// history.
func (f *FlightRecorder) Record(kind string, fields map[string]any) uint64 {
	at := f.Now().Nanoseconds()
	fields = copyFields(fields)
	f.mu.Lock()
	f.next++
	seq := f.next
	f.ring[(seq-1)%uint64(len(f.ring))] = Event{Seq: seq, AtNs: at, Kind: kind, Fields: fields}
	f.mu.Unlock()
	return seq
}

// copyFields deep-copies an event field map: nested map[string]any,
// []any, and []byte values are cloned; everything else (numbers,
// strings, bools) is immutable and copied by value.
func copyFields(fields map[string]any) map[string]any {
	if fields == nil {
		return nil
	}
	out := make(map[string]any, len(fields))
	for k, v := range fields {
		out[k] = copyFieldValue(v)
	}
	return out
}

func copyFieldValue(v any) any {
	switch x := v.(type) {
	case map[string]any:
		return copyFields(x)
	case []any:
		out := make([]any, len(x))
		for i, e := range x {
			out[i] = copyFieldValue(e)
		}
		return out
	case []byte:
		out := make([]byte, len(x))
		copy(out, x)
		return out
	default:
		return v
	}
}

// Total returns the number of events ever recorded (including ones the
// ring has since overwritten).
func (f *FlightRecorder) Total() uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.next
}

// Events returns the retained events oldest-to-newest.
func (f *FlightRecorder) Events() []Event {
	f.mu.Lock()
	defer f.mu.Unlock()
	capN := uint64(len(f.ring))
	n := f.next
	if n > capN {
		n = capN
	}
	out := make([]Event, 0, n)
	for i := uint64(0); i < n; i++ {
		seq := f.next - n + 1 + i
		out = append(out, f.ring[(seq-1)%capN])
	}
	return out
}

// flightDump is the JSON shape of a recorder dump.
type flightDump struct {
	Total       uint64  `json:"total"`
	Capacity    int     `json:"capacity"`
	Overwritten uint64  `json:"overwritten"`
	UptimeNs    int64   `json:"uptime_ns"`
	Events      []Event `json:"events"`
}

// WriteJSON dumps the recorder state as one JSON object.
func (f *FlightRecorder) WriteJSON(w io.Writer) error {
	events := f.Events()
	total := f.Total()
	over := uint64(0)
	if total > uint64(len(events)) {
		over = total - uint64(len(events))
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(flightDump{
		Total:       total,
		Capacity:    cap(f.ring),
		Overwritten: over,
		UptimeNs:    f.Now().Nanoseconds(),
		Events:      events,
	})
}
