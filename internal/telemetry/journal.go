package telemetry

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"os"
	"sync"
	"time"
)

// Journal is a structured JSONL event sink for run-level observability:
// every record carries the run ID, a per-journal sequence number, a
// wall-clock timestamp (for correlating runs across machines), and a
// monotonic offset from journal creation (for durations immune to clock
// steps). Writes are serialized by a mutex and each record is exactly
// one line, so a journal written by concurrent goroutines is always
// well-formed line-by-line JSON.
//
// The journal is the durable counterpart of the FlightRecorder: the
// recorder is a bounded in-memory black box, the journal an append-only
// audit trail the offline analyzer (cmd/p4guard-obs) replays.
type Journal struct {
	runID string
	start time.Time

	mu     sync.Mutex
	w      *bufio.Writer
	closer io.Closer // nil when the caller owns the writer
	seq    uint64
	err    error // first write error, sticky
}

// JournalRecord is the JSON shape of one journal line.
type JournalRecord struct {
	RunID string `json:"run_id"`
	Seq   uint64 `json:"seq"`
	// Wall is the wall-clock time the event was recorded, RFC3339Nano.
	Wall time.Time `json:"wall"`
	// MonoNs is the monotonic offset since the journal was opened.
	MonoNs int64  `json:"mono_ns"`
	Kind   string `json:"kind"`
	// Fields is the event payload; any JSON-marshalable value.
	Fields json.RawMessage `json:"fields,omitempty"`
}

// NewRunID returns a fresh run identifier: UTC timestamp plus random
// suffix, unique enough to correlate journals, metrics, and artifacts
// of one run.
func NewRunID() string {
	return fmt.Sprintf("run-%s-%04x",
		time.Now().UTC().Format("20060102T150405"), rand.Intn(1<<16))
}

// NewJournal builds a journal writing to w under the given run ID (a
// fresh NewRunID when empty). The caller retains ownership of w.
func NewJournal(w io.Writer, runID string) *Journal {
	if runID == "" {
		runID = NewRunID()
	}
	return &Journal{runID: runID, start: time.Now(), w: bufio.NewWriter(w)}
}

// OpenJournal creates (or truncates) a journal file at path. Close
// flushes and closes the file.
func OpenJournal(path, runID string) (*Journal, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("telemetry: journal %s: %w", path, err)
	}
	j := NewJournal(f, runID)
	j.closer = f
	return j, nil
}

// RunID returns the journal's run identifier.
func (j *Journal) RunID() string { return j.runID }

// Event appends one record. fields may be any JSON-marshalable value
// (typically a map or a struct); nil omits the payload. The first
// marshal or write error is returned and retained — subsequent Events
// keep failing with it, so callers may check once at Close.
func (j *Journal) Event(kind string, fields any) error {
	var raw json.RawMessage
	if fields != nil {
		b, err := json.Marshal(fields)
		if err != nil {
			return fmt.Errorf("telemetry: journal event %s: %w", kind, err)
		}
		raw = b
	}
	now := time.Now()
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.err != nil {
		return j.err
	}
	j.seq++
	rec := JournalRecord{
		RunID:  j.runID,
		Seq:    j.seq,
		Wall:   now,
		MonoNs: time.Since(j.start).Nanoseconds(),
		Kind:   kind,
		Fields: raw,
	}
	line, err := json.Marshal(rec)
	if err == nil {
		_, err = j.w.Write(append(line, '\n'))
	}
	if err != nil {
		j.err = fmt.Errorf("telemetry: journal write: %w", err)
		return j.err
	}
	return nil
}

// Flush pushes buffered records to the underlying writer.
func (j *Journal) Flush() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.err != nil {
		return j.err
	}
	return j.w.Flush()
}

// Close flushes and, when the journal owns its file, closes it. It
// returns the first error the journal encountered.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	ferr := j.w.Flush()
	if j.closer != nil {
		if cerr := j.closer.Close(); ferr == nil {
			ferr = cerr
		}
		j.closer = nil
	}
	if j.err != nil {
		return j.err
	}
	return ferr
}

// ReadJournal parses a JSONL journal stream into records, tolerating a
// trailing partial line (a crashed writer) by returning what parsed
// cleanly along with the error.
func ReadJournal(r io.Reader) ([]JournalRecord, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var out []JournalRecord
	line := 0
	for sc.Scan() {
		line++
		text := sc.Bytes()
		if len(text) == 0 {
			continue
		}
		var rec JournalRecord
		if err := json.Unmarshal(text, &rec); err != nil {
			return out, fmt.Errorf("telemetry: journal line %d: %w", line, err)
		}
		out = append(out, rec)
	}
	if err := sc.Err(); err != nil {
		return out, fmt.Errorf("telemetry: journal read: %w", err)
	}
	return out, nil
}
