package telemetry

import (
	"math"
	"sync"
	"sync/atomic"
)

// FloatGauge is a float-valued gauge (Gauge holds int64 counters; losses
// and accuracies need the full float range). The value is stored as
// atomic bits so Set/Value are lock-free.
type FloatGauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *FloatGauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the current value.
func (g *FloatGauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// FloatGauge registers a float gauge and returns it.
func (r *Registry) FloatGauge(name, help string, labels ...Label) *FloatGauge {
	g := &FloatGauge{}
	r.GaugeFunc(name, help, g.Value, labels...)
	return g
}

// TrainGauges exports live training progress on /metrics: per-stage
// epoch counter, loss, accuracy, and gradient norm, updated from the
// training loop's epoch callback so a scrape mid-run shows where
// training is right now. Stages register lazily on first observation.
type TrainGauges struct {
	reg *Registry

	mu     sync.Mutex
	stages map[string]*stageGauges
}

type stageGauges struct {
	epoch    *Gauge
	loss     *FloatGauge
	accuracy *FloatGauge
	gradNorm *FloatGauge
}

// NewTrainGauges builds the gauge set on reg.
func NewTrainGauges(reg *Registry) *TrainGauges {
	return &TrainGauges{reg: reg, stages: make(map[string]*stageGauges)}
}

// Observe publishes one epoch's statistics for a stage.
func (t *TrainGauges) Observe(stage string, epoch int, loss, accuracy, gradNorm float64) {
	t.mu.Lock()
	sg := t.stages[stage]
	if sg == nil {
		lbl := Label{Key: "stage", Value: stage}
		sg = &stageGauges{
			epoch:    t.reg.Gauge("p4guard_train_epoch", "Last completed training epoch.", lbl),
			loss:     t.reg.FloatGauge("p4guard_train_loss", "Mean minibatch loss of the last epoch.", lbl),
			accuracy: t.reg.FloatGauge("p4guard_train_accuracy", "Training-set accuracy after the last epoch.", lbl),
			gradNorm: t.reg.FloatGauge("p4guard_train_grad_norm", "Global L2 gradient norm after the last epoch.", lbl),
		}
		t.stages[stage] = sg
	}
	t.mu.Unlock()
	sg.epoch.Set(int64(epoch))
	sg.loss.Set(loss)
	sg.accuracy.Set(accuracy)
	sg.gradNorm.Set(gradNorm)
}
