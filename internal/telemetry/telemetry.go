// Package telemetry is the runtime observability core shared by the
// switch, the controller, and the p4rt agent: lock-free counters, gauges,
// and fixed-bucket latency histograms; a Prometheus-text-format exposition
// writer; and a bounded ring-buffer flight recorder for structured
// control-plane events.
//
// The package is dependency-free (stdlib only) and safe on hot paths: an
// instrument update is one or two uncontended atomic adds, registries are
// only locked at registration and exposition time, and snapshots read the
// live atomics without stalling writers. Snapshots are monotonic rather
// than point-in-time consistent: a histogram observation increments its
// bucket before the total count, and Snapshot reads the total first, so
// the bucket sum is always >= the reported count and the two agree at
// quiescence.
package telemetry

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one exposition label pair.
type Label struct {
	Key   string
	Value string
}

// LatencyBuckets are the default histogram bounds for per-packet
// forwarding latency, in seconds: 100ns to 100ms, roughly logarithmic.
// The data plane sits in the sub-microsecond buckets; the slow path and
// digest round trips land milliseconds up.
var LatencyBuckets = []float64{
	100e-9, 250e-9, 500e-9,
	1e-6, 2.5e-6, 5e-6, 10e-6, 25e-6, 50e-6, 100e-6, 250e-6, 500e-6,
	1e-3, 10e-3, 100e-3,
}

// Counter is a monotonically increasing uint64.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a settable int64 (queue depths, entry counts).
type Gauge struct {
	v atomic.Int64
}

// Set stores n.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adds n (may be negative).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram is a fixed-bucket histogram with atomic bucket counters. The
// bucket at index i counts observations <= Bounds[i]; the final implicit
// bucket counts everything larger (+Inf).
type Histogram struct {
	bounds []float64
	counts []atomic.Uint64 // len(bounds)+1, last is +Inf
	sum    atomic.Uint64   // float64 bits, CAS-updated
	count  atomic.Uint64
}

// NewHistogram builds a histogram over the given sorted upper bounds
// (LatencyBuckets when nil).
func NewHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		bounds = LatencyBuckets
	}
	b := make([]float64, len(bounds))
	copy(b, bounds)
	sort.Float64s(b)
	return &Histogram{bounds: b, counts: make([]atomic.Uint64, len(b)+1)}
}

// Observe records one value. Cost: two atomic adds plus one CAS loop for
// the sum — callers on per-packet paths should sample (see the switch's
// latency sampling policy) rather than observe every packet.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			break
		}
	}
	h.count.Add(1)
}

// HistogramSnapshot is a monotonic snapshot of a histogram.
type HistogramSnapshot struct {
	Bounds []float64 // upper bounds; Counts has one extra +Inf bucket
	Counts []uint64  // per-bucket (non-cumulative) counts
	Count  uint64
	Sum    float64
}

// Mean returns the mean observed value (0 when empty).
func (s HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / float64(s.Count)
}

// Quantile estimates the q-quantile (0..1) by linear interpolation
// within the bucket holding the target rank — the same estimator
// Prometheus's histogram_quantile uses. Values in the +Inf bucket clamp
// to the largest finite bound. Returns 0 when the histogram is empty.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	var total uint64
	for _, c := range s.Counts {
		total += c
	}
	if total == 0 || len(s.Bounds) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	cum := uint64(0)
	for i, c := range s.Counts {
		if float64(cum+c) < rank {
			cum += c
			continue
		}
		if i == len(s.Bounds) { // +Inf bucket: clamp to last finite bound
			return s.Bounds[len(s.Bounds)-1]
		}
		lower := 0.0
		if i > 0 {
			lower = s.Bounds[i-1]
		}
		upper := s.Bounds[i]
		if c == 0 {
			return upper
		}
		return lower + (upper-lower)*(rank-float64(cum))/float64(c)
	}
	return s.Bounds[len(s.Bounds)-1]
}

// Snapshot reads the histogram. The total count is read before the
// buckets, so sum(Counts) >= Count even under concurrent Observe calls.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Bounds: h.bounds,
		Counts: make([]uint64, len(h.counts)),
		Count:  h.count.Load(),
		Sum:    math.Float64frombits(h.sum.Load()),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	return s
}

// metric is one registered instrument or collector.
type metric struct {
	name   string
	help   string
	typ    string // "counter", "gauge", "histogram"
	labels []Label
	// exactly one of the following is set
	counter *Counter
	gauge   *Gauge
	hist    *Histogram
	valueFn func() float64
	collect func(emit func(labels []Label, v float64))
}

// Registry holds named instruments and renders them in Prometheus text
// exposition format. Registration takes a lock; instrument updates do not.
type Registry struct {
	mu      sync.Mutex
	metrics []*metric
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry { return &Registry{} }

func (r *Registry) add(m *metric) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.metrics = append(r.metrics, m)
}

// Counter registers and returns an owned counter.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	c := &Counter{}
	r.add(&metric{name: name, help: help, typ: "counter", labels: labels, counter: c})
	return c
}

// Gauge registers and returns an owned gauge.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	g := &Gauge{}
	r.add(&metric{name: name, help: help, typ: "gauge", labels: labels, gauge: g})
	return g
}

// Histogram registers and returns an owned histogram over the given
// bounds (LatencyBuckets when nil).
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	h := NewHistogram(bounds)
	r.add(&metric{name: name, help: help, typ: "histogram", labels: labels, hist: h})
	return h
}

// CounterFunc registers a counter whose value is read from fn at
// exposition time — the pattern for surfacing counters a subsystem
// already maintains as its own atomics.
func (r *Registry) CounterFunc(name, help string, fn func() float64, labels ...Label) {
	r.add(&metric{name: name, help: help, typ: "counter", labels: labels, valueFn: fn})
}

// GaugeFunc registers a gauge whose value is read from fn at exposition
// time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	r.add(&metric{name: name, help: help, typ: "gauge", labels: labels, valueFn: fn})
}

// CollectFunc registers a callback that emits a dynamic sample set under
// one family at exposition time — used for per-table-entry counters whose
// label sets change as tables are reprogrammed. typ must be "counter" or
// "gauge".
func (r *Registry) CollectFunc(name, help, typ string, fn func(emit func(labels []Label, v float64))) {
	r.add(&metric{name: name, help: help, typ: typ, collect: fn})
}

// WritePrometheus renders every registered metric in Prometheus text
// exposition format, grouped by family name (HELP/TYPE emitted once per
// family) and sorted for deterministic scrapes.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	metrics := make([]*metric, len(r.metrics))
	copy(metrics, r.metrics)
	r.mu.Unlock()

	sort.SliceStable(metrics, func(i, j int) bool { return metrics[i].name < metrics[j].name })

	var b strings.Builder
	lastFamily := ""
	for _, m := range metrics {
		if m.name != lastFamily {
			fmt.Fprintf(&b, "# HELP %s %s\n", m.name, escapeHelp(m.help))
			fmt.Fprintf(&b, "# TYPE %s %s\n", m.name, m.typ)
			lastFamily = m.name
		}
		switch {
		case m.counter != nil:
			writeSample(&b, m.name, m.labels, float64(m.counter.Value()))
		case m.gauge != nil:
			writeSample(&b, m.name, m.labels, float64(m.gauge.Value()))
		case m.valueFn != nil:
			writeSample(&b, m.name, m.labels, m.valueFn())
		case m.collect != nil:
			m.collect(func(labels []Label, v float64) {
				writeSample(&b, m.name, labels, v)
			})
		case m.hist != nil:
			s := m.hist.Snapshot()
			cum := uint64(0)
			for i, bound := range s.Bounds {
				cum += s.Counts[i]
				writeSample(&b, m.name+"_bucket",
					append(append([]Label{}, m.labels...), Label{"le", formatFloat(bound)}), float64(cum))
			}
			cum += s.Counts[len(s.Counts)-1]
			writeSample(&b, m.name+"_bucket",
				append(append([]Label{}, m.labels...), Label{"le", "+Inf"}), float64(cum))
			writeSample(&b, m.name+"_sum", m.labels, s.Sum)
			writeSample(&b, m.name+"_count", m.labels, float64(s.Count))
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func writeSample(b *strings.Builder, name string, labels []Label, v float64) {
	b.WriteString(name)
	if len(labels) > 0 {
		b.WriteByte('{')
		for i, l := range labels {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(l.Key)
			b.WriteString(`="`)
			b.WriteString(escapeLabel(l.Value))
			b.WriteByte('"')
		}
		b.WriteByte('}')
	}
	b.WriteByte(' ')
	b.WriteString(formatFloat(v))
	b.WriteByte('\n')
}

func formatFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatFloat(v, 'f', -1, 64)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeLabel(s string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(s)
}

func escapeHelp(s string) string {
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`)
	return r.Replace(s)
}
