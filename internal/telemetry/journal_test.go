package telemetry

import (
	"bytes"
	"encoding/json"
	"os"
	"strings"
	"sync"
	"testing"
)

// TestJournalConcurrentWritersWellFormed hammers one journal from many
// goroutines and asserts the resulting stream is line-by-line valid
// JSON with a dense, strictly increasing sequence — the property the
// offline analyzer depends on.
func TestJournalConcurrentWritersWellFormed(t *testing.T) {
	var buf bytes.Buffer
	j := NewJournal(&buf, "run-test")
	const writers, events = 8, 200
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < events; i++ {
				if err := j.Event("tick", map[string]any{"writer": w, "i": i}); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	recs, err := ReadJournal(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != writers*events {
		t.Fatalf("%d records, want %d", len(recs), writers*events)
	}
	seen := make(map[uint64]bool, len(recs))
	for i, rec := range recs {
		if rec.RunID != "run-test" {
			t.Fatalf("record %d: run id %q", i, rec.RunID)
		}
		if rec.Seq == 0 || rec.Seq > uint64(len(recs)) || seen[rec.Seq] {
			t.Fatalf("record %d: bad or duplicate seq %d", i, rec.Seq)
		}
		seen[rec.Seq] = true
		if rec.Kind != "tick" {
			t.Fatalf("record %d: kind %q", i, rec.Kind)
		}
		var f struct {
			Writer int `json:"writer"`
			I      int `json:"i"`
		}
		if err := json.Unmarshal(rec.Fields, &f); err != nil {
			t.Fatalf("record %d: fields: %v", i, err)
		}
	}
	// Records must appear in seq order: one mutex serializes assignment
	// and write, so interleaving cannot reorder lines.
	for i := 1; i < len(recs); i++ {
		if recs[i].Seq <= recs[i-1].Seq {
			t.Fatalf("record %d: seq %d after %d", i, recs[i].Seq, recs[i-1].Seq)
		}
	}
}

func TestJournalFileRoundTrip(t *testing.T) {
	path := t.TempDir() + "/run.jsonl"
	j, err := OpenJournal(path, "")
	if err != nil {
		t.Fatal(err)
	}
	if j.RunID() == "" {
		t.Fatal("empty generated run id")
	}
	if err := j.Event("run_start", map[string]any{"seed": 7}); err != nil {
		t.Fatal(err)
	}
	if err := j.Event("run_end", nil); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	recs, err := ReadJournal(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || recs[0].Kind != "run_start" || recs[1].Kind != "run_end" {
		t.Fatalf("records = %+v", recs)
	}
	if recs[1].MonoNs < recs[0].MonoNs {
		t.Fatalf("monotonic offsets went backwards: %d then %d", recs[0].MonoNs, recs[1].MonoNs)
	}
	if recs[1].Fields != nil {
		t.Fatalf("nil fields serialized as %s", recs[1].Fields)
	}
}

// TestReadJournalToleratesPartialTrailingLine simulates a writer killed
// mid-record: the clean prefix must still parse, with the error
// reported.
func TestReadJournalToleratesPartialTrailingLine(t *testing.T) {
	var buf bytes.Buffer
	j := NewJournal(&buf, "run-crash")
	for i := 0; i < 3; i++ {
		if err := j.Event("tick", map[string]int{"i": i}); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Flush(); err != nil {
		t.Fatal(err)
	}
	trunc := buf.String()
	trunc = trunc[:len(trunc)-10] // chop mid-way through the last record
	recs, err := ReadJournal(strings.NewReader(trunc))
	if err == nil {
		t.Fatal("truncated journal parsed without error")
	}
	if len(recs) != 2 {
		t.Fatalf("%d clean records recovered, want 2", len(recs))
	}
}

// TestReadJournalMidFileCorruption covers corruption in the *interior*
// of a journal — a torn write or disk fault in the middle, not just a
// crashed tail. The records before the bad line must come back clean
// and the error must name the offending line.
func TestReadJournalMidFileCorruption(t *testing.T) {
	var buf bytes.Buffer
	j := NewJournal(&buf, "run-mid")
	for i := 0; i < 4; i++ {
		if err := j.Event("tick", map[string]int{"i": i}); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Flush(); err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitAfter(buf.String(), "\n")[:4]

	cases := map[string]struct {
		corrupt string // replaces line 3 (index 2)
		clean   int
		errLine string
	}{
		"garbage line":   {"!!not json!!\n", 2, "line 3"},
		"truncated line": {lines[2][:len(lines[2])/2] + "\n", 2, "line 3"},
		"binary splice":  {"\x00\x01\x02\n", 2, "line 3"},
	}
	for name, tc := range cases {
		t.Run(name, func(t *testing.T) {
			doc := lines[0] + lines[1] + tc.corrupt + lines[3]
			recs, err := ReadJournal(strings.NewReader(doc))
			if err == nil {
				t.Fatal("corrupt interior line parsed without error")
			}
			if !strings.Contains(err.Error(), tc.errLine) {
				t.Fatalf("error %q does not name %s", err, tc.errLine)
			}
			if len(recs) != tc.clean {
				t.Fatalf("%d clean records recovered, want %d", len(recs), tc.clean)
			}
			for i, rec := range recs {
				if rec.Kind != "tick" || rec.Seq != uint64(i+1) {
					t.Fatalf("clean prefix record %d = %+v", i, rec)
				}
			}
		})
	}
}

// TestReadJournalSkipsBlankInteriorLines: blank lines (e.g. from an
// append with a spurious newline) are not corruption.
func TestReadJournalSkipsBlankInteriorLines(t *testing.T) {
	var buf bytes.Buffer
	j := NewJournal(&buf, "run-blank")
	_ = j.Event("a", nil)
	_ = j.Event("b", nil)
	_ = j.Flush()
	lines := strings.SplitAfter(buf.String(), "\n")[:2]
	recs, err := ReadJournal(strings.NewReader(lines[0] + "\n\n" + lines[1]))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || recs[0].Kind != "a" || recs[1].Kind != "b" {
		t.Fatalf("records = %+v", recs)
	}
}

func TestNewRunIDUnique(t *testing.T) {
	a, b := NewRunID(), NewRunID()
	if a == b {
		t.Fatalf("duplicate run ids %q", a)
	}
	if !strings.HasPrefix(a, "run-") {
		t.Fatalf("run id %q", a)
	}
}
