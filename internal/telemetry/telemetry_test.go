package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("test_total", "a counter")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	g := reg.Gauge("test_depth", "a gauge")
	g.Set(7)
	g.Add(-2)
	if got := g.Value(); got != 5 {
		t.Fatalf("gauge = %d, want 5", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram([]float64{1, 10, 100})
	for _, v := range []float64{0.5, 1, 2, 10, 11, 1000} {
		h.Observe(v)
	}
	s := h.Snapshot()
	// le=1: {0.5, 1}; le=10: {2, 10}; le=100: {11}; +Inf: {1000}
	want := []uint64{2, 2, 1, 1}
	for i, w := range want {
		if s.Counts[i] != w {
			t.Fatalf("bucket %d = %d, want %d (counts %v)", i, s.Counts[i], w, s.Counts)
		}
	}
	if s.Count != 6 {
		t.Fatalf("count = %d, want 6", s.Count)
	}
	if math.Abs(s.Sum-1024.5) > 1e-9 {
		t.Fatalf("sum = %v, want 1024.5", s.Sum)
	}
	if math.Abs(s.Mean()-1024.5/6) > 1e-9 {
		t.Fatalf("mean = %v", s.Mean())
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4, 8})
	// 10 observations uniformly in (0,1]: the whole mass sits in bucket 0.
	for i := 0; i < 10; i++ {
		h.Observe(0.5)
	}
	s := h.Snapshot()
	if q := s.Quantile(0.5); q <= 0 || q > 1 {
		t.Fatalf("q50 = %v, want within (0,1]", q)
	}
	// Add mass above: 10 more at 3 → median moves to the (2,4] bucket edge
	// region and p99 interpolates inside (2,4].
	for i := 0; i < 10; i++ {
		h.Observe(3)
	}
	s = h.Snapshot()
	if q := s.Quantile(0.99); q <= 2 || q > 4 {
		t.Fatalf("q99 = %v, want within (2,4]", q)
	}
	// +Inf bucket clamps to the largest finite bound.
	h.Observe(100)
	if q := h.Snapshot().Quantile(1); q != 8 {
		t.Fatalf("q100 = %v, want clamp to 8", q)
	}
	if q := (HistogramSnapshot{}).Quantile(0.5); q != 0 {
		t.Fatalf("empty quantile = %v", q)
	}
}

// TestHistogramConcurrentSnapshot hammers one histogram from writer
// goroutines while snapshotting concurrently: every snapshot must be
// monotonic (bucket sum >= count, since count is incremented last and
// read first), and the final state must balance exactly. Run with -race.
func TestHistogramConcurrentSnapshot(t *testing.T) {
	h := NewHistogram([]float64{1e-6, 1e-3, 1})
	const writers, perWriter = 8, 5000
	stop := make(chan struct{})
	var snaps atomic.Int64
	var snapWG sync.WaitGroup
	snapWG.Add(1)
	go func() {
		defer snapWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			s := h.Snapshot()
			var sum uint64
			for _, c := range s.Counts {
				sum += c
			}
			if sum < s.Count {
				t.Errorf("snapshot bucket sum %d < count %d", sum, s.Count)
				return
			}
			snaps.Add(1)
		}
	}()
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				h.Observe(float64(i%4) * 1e-4)
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	snapWG.Wait()
	s := h.Snapshot()
	var sum uint64
	for _, c := range s.Counts {
		sum += c
	}
	if s.Count != writers*perWriter || sum != s.Count {
		t.Fatalf("final count=%d bucketsum=%d, want %d", s.Count, sum, writers*perWriter)
	}
	if snaps.Load() == 0 {
		t.Fatal("snapshotter never ran")
	}
}

func TestWritePrometheusFormat(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("app_requests_total", "Total requests.", Label{"code", "200"})
	c.Add(3)
	reg.CounterFunc("app_requests_total", "Total requests.", func() float64 { return 9 }, Label{"code", "500"})
	g := reg.Gauge("app_queue_depth", "Queue depth.")
	g.Set(4)
	h := reg.Histogram("app_latency_seconds", "Latency.", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)
	reg.CollectFunc("app_entry_hits_total", "Per-entry hits.", "counter", func(emit func([]Label, float64)) {
		emit([]Label{{"entry", "1"}}, 11)
		emit([]Label{{"entry", `quo"te`}}, 2)
	})

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# HELP app_requests_total Total requests.\n# TYPE app_requests_total counter\n",
		`app_requests_total{code="200"} 3`,
		`app_requests_total{code="500"} 9`,
		"app_queue_depth 4",
		`app_latency_seconds_bucket{le="0.1"} 1`,
		`app_latency_seconds_bucket{le="1"} 2`,
		`app_latency_seconds_bucket{le="+Inf"} 3`,
		"app_latency_seconds_sum 5.55",
		"app_latency_seconds_count 3",
		`app_entry_hits_total{entry="1"} 11`,
		`app_entry_hits_total{entry="quo\"te"} 2`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
	// HELP/TYPE emitted once per family even with two instruments.
	if n := strings.Count(out, "# TYPE app_requests_total counter"); n != 1 {
		t.Fatalf("TYPE emitted %d times, want 1:\n%s", n, out)
	}
}

func TestFlightRecorderWraparound(t *testing.T) {
	fr := NewFlightRecorder(8)
	for i := 0; i < 20; i++ {
		seq := fr.Record("tick", map[string]any{"i": i})
		if seq != uint64(i+1) {
			t.Fatalf("seq = %d, want %d", seq, i+1)
		}
	}
	if fr.Total() != 20 {
		t.Fatalf("total = %d, want 20", fr.Total())
	}
	events := fr.Events()
	if len(events) != 8 {
		t.Fatalf("retained %d events, want 8", len(events))
	}
	for i, e := range events {
		if want := uint64(13 + i); e.Seq != want {
			t.Fatalf("event %d seq = %d, want %d", i, e.Seq, want)
		}
		if i > 0 && e.AtNs < events[i-1].AtNs {
			t.Fatalf("non-monotonic timestamps: %d then %d", events[i-1].AtNs, e.AtNs)
		}
	}

	var b strings.Builder
	if err := fr.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	var dump struct {
		Total       uint64  `json:"total"`
		Capacity    int     `json:"capacity"`
		Overwritten uint64  `json:"overwritten"`
		Events      []Event `json:"events"`
	}
	if err := json.Unmarshal([]byte(b.String()), &dump); err != nil {
		t.Fatalf("dump not valid JSON: %v\n%s", err, b.String())
	}
	if dump.Total != 20 || dump.Capacity != 8 || dump.Overwritten != 12 || len(dump.Events) != 8 {
		t.Fatalf("dump = %+v", dump)
	}
}

// TestFlightRecorderConcurrent records from many goroutines under -race;
// sequence numbers must come out unique and dense.
func TestFlightRecorderConcurrent(t *testing.T) {
	fr := NewFlightRecorder(64)
	const writers, per = 8, 500
	var wg sync.WaitGroup
	seqs := make([][]uint64, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				seqs[w] = append(seqs[w], fr.Record("ev", nil))
			}
		}(w)
	}
	wg.Wait()
	seen := make(map[uint64]bool)
	for _, s := range seqs {
		for _, q := range s {
			if seen[q] {
				t.Fatalf("duplicate seq %d", q)
			}
			seen[q] = true
		}
	}
	if fr.Total() != writers*per || len(seen) != writers*per {
		t.Fatalf("total=%d unique=%d, want %d", fr.Total(), len(seen), writers*per)
	}
}

// TestFlightRecorderFieldsDeepCopied is the regression test for event
// field aliasing: Record used to store the caller's map by reference, so
// mutating it afterwards rewrote recorded history.
func TestFlightRecorderFieldsDeepCopied(t *testing.T) {
	fr := NewFlightRecorder(8)
	nested := map[string]any{"inner": 1}
	list := []any{"a", "b"}
	raw := []byte{0xde, 0xad}
	fields := map[string]any{"n": nested, "l": list, "b": raw, "s": "keep"}
	fr.Record("ev", fields)

	// Mutate everything the caller still holds.
	fields["s"] = "clobbered"
	fields["new"] = true
	nested["inner"] = 99
	list[0] = "z"
	raw[0] = 0x00

	ev := fr.Events()[0]
	if ev.Fields["s"] != "keep" {
		t.Fatalf("top-level field aliased: %v", ev.Fields["s"])
	}
	if _, ok := ev.Fields["new"]; ok {
		t.Fatal("later insertion leaked into recorded event")
	}
	if got := ev.Fields["n"].(map[string]any)["inner"]; got != 1 {
		t.Fatalf("nested map aliased: %v", got)
	}
	if got := ev.Fields["l"].([]any)[0]; got != "a" {
		t.Fatalf("slice aliased: %v", got)
	}
	if got := ev.Fields["b"].([]byte)[0]; got != 0xde {
		t.Fatalf("byte slice aliased: %#x", got)
	}

	// nil fields stay nil.
	fr.Record("empty", nil)
	if fr.Events()[1].Fields != nil {
		t.Fatal("nil fields should stay nil")
	}
}

func TestServerEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("srv_up_total", "Up.").Inc()
	fr := NewFlightRecorder(16)
	fr.Record("boot", map[string]any{"ok": true})
	srv, err := NewServer("127.0.0.1:0", reg, fr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = srv.Close() })

	get := func(path string) (string, http.Header) {
		resp, err := http.Get(fmt.Sprintf("http://%s%s", srv.Addr(), path))
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer func() { _ = resp.Body.Close() }()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body), resp.Header
	}
	out, hdr := get("/metrics")
	if !strings.Contains(out, "srv_up_total 1") {
		t.Fatalf("/metrics missing counter:\n%s", out)
	}
	// Prometheus exposition format version must be declared so scrapers
	// pick the text parser.
	if ct := hdr.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("/metrics Content-Type = %q, want text/plain; version=0.0.4", ct)
	}
	if out, _ := get("/debug/vars"); !strings.Contains(out, `"kind": "boot"`) {
		t.Fatalf("/debug/vars missing event:\n%s", out)
	}
	if out, _ := get("/debug/pprof/cmdline"); len(out) == 0 {
		t.Fatal("/debug/pprof/cmdline empty")
	}
}
