package p4

import (
	"math/rand"
	"testing"

	"p4guard/internal/packet"
)

func randFrames(rng *rand.Rand, n, size int) []*packet.Packet {
	pkts := make([]*packet.Packet, n)
	for i := range pkts {
		b := make([]byte, size)
		rng.Read(b)
		// Bias some bytes into narrow ranges so table hits happen often.
		b[0] = byte(rng.Intn(8))
		if size > 3 {
			b[3] = byte(rng.Intn(4))
		}
		pkts[i] = &packet.Packet{Link: packet.LinkEthernet, Bytes: b}
	}
	return pkts
}

func fourByteKey() []FieldSpec {
	return []FieldSpec{{Name: "k", Offset: 0, Width: 2}, {Name: "k2", Offset: 3, Width: 2}}
}

// twinTables builds two identically-programmed tables so the batch path
// and the per-packet reference can advance separate counters that must
// end up equal.
func twinTables(t *testing.T, kind MatchKind, entries []Entry) (*Table, *Table) {
	t.Helper()
	a := NewTable("a", kind, fourByteKey(), 0, Action{Type: ActionAllow, Class: 9})
	b := NewTable("b", kind, fourByteKey(), 0, Action{Type: ActionAllow, Class: 9})
	if err := a.Program(fourByteKey(), Action{Type: ActionAllow, Class: 9}, entries); err != nil {
		t.Fatal(err)
	}
	if err := b.Program(fourByteKey(), Action{Type: ActionAllow, Class: 9}, entries); err != nil {
		t.Fatal(err)
	}
	return a, b
}

func kindEntries(t *testing.T, rng *rand.Rand, kind MatchKind, n int) []Entry {
	t.Helper()
	entries := make([]Entry, 0, n)
	for i := 0; i < n; i++ {
		act := Action{Type: ActionDrop, Class: i % 5}
		if i%2 == 0 {
			act = Action{Type: ActionAllow, Class: i % 5}
		}
		switch kind {
		case MatchExact:
			entries = append(entries, Entry{
				Value:  []byte{byte(i % 8), byte(rng.Intn(4)), byte(i % 4), byte(i)},
				Action: act,
			})
		case MatchTernary:
			mask := []byte{0xff, 0x00, 0xff, 0x00}
			if i%3 == 0 {
				mask = []byte{0xff, 0xff, 0x00, 0x00}
			}
			val := []byte{byte(i % 8), byte(rng.Intn(256)), byte(i % 4), byte(rng.Intn(256))}
			for j := range val {
				val[j] &= mask[j]
			}
			entries = append(entries, Entry{Priority: rng.Intn(4), Value: val, Mask: mask, Action: act})
		case MatchLPM:
			val := []byte{byte(i % 8), byte(rng.Intn(256)), byte(rng.Intn(256)), byte(rng.Intn(256))}
			plen := rng.Intn(33)
			masked := append([]byte(nil), val...)
			// LPM values need no canonical form; the table masks at match
			// time via the prefix, so leave val as generated.
			_ = masked
			entries = append(entries, Entry{Value: val, PrefixLen: plen, Action: act})
		case MatchRange:
			lo := []byte{byte(i % 8), 0, byte(i % 4), 0}
			hi := []byte{byte(i % 8), 255, byte(i % 4), byte(128 + rng.Intn(128))}
			entries = append(entries, Entry{Priority: rng.Intn(4), Lo: lo, Hi: hi, Action: act})
		}
	}
	return entries
}

func allIdx(n int) []int32 {
	idx := make([]int32, n)
	for i := range idx {
		idx[i] = int32(i)
	}
	return idx
}

// TestLookupBatchMatchesLookup drives every match kind: the batched
// resolver must return the same action/matched per packet as Lookup,
// and the twin tables' counters (table hit/miss and per-entry
// hits/bytes) must advance identically.
func TestLookupBatchMatchesLookup(t *testing.T) {
	kinds := []MatchKind{MatchExact, MatchTernary, MatchLPM, MatchRange}
	for _, kind := range kinds {
		t.Run(kind.String(), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(kind)))
			batchT, refT := twinTables(t, kind, kindEntries(t, rng, kind, 40))
			pkts := randFrames(rng, 500, 32)
			var ws BatchWorkspace
			// Several batches so the flow cache serves warm hits too.
			for round := 0; round < 3; round++ {
				active := allIdx(len(pkts))
				batchT.LookupBatch(pkts, active, &ws, 0)
				for i, pkt := range pkts {
					wantAct, wantMatched := refT.Lookup(pkt.Bytes)
					if ws.acts[i] != wantAct || ws.matched[i] != wantMatched {
						t.Fatalf("round %d pkt %d: batch (%+v,%v) != lookup (%+v,%v)",
							round, i, ws.acts[i], ws.matched[i], wantAct, wantMatched)
					}
				}
			}
			bs, rs := batchT.Stats(), refT.Stats()
			bs.Name, rs.Name = "", ""
			if bs != rs {
				t.Fatalf("table stats diverged: batch %+v ref %+v", bs, rs)
			}
			bEnt, rEnt := batchT.EntrySnapshots(), refT.EntrySnapshots()
			for i := range bEnt {
				if bEnt[i].Hits != rEnt[i].Hits || bEnt[i].Bytes != rEnt[i].Bytes {
					t.Fatalf("entry %d counters diverged: batch %+v ref %+v", i, bEnt[i], rEnt[i])
				}
			}
		})
	}
}

// TestLookupBatchUnderChurn reprograms and mutates the table between
// batches: every post-change batch must agree with fresh per-packet
// lookups, proving the flow cache's generation tagging invalidates on
// insert, delete, and full program.
func TestLookupBatchUnderChurn(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	tab := NewTable("churn", MatchTernary, fourByteKey(), 0, Action{Type: ActionDigest})
	pkts := randFrames(rng, 200, 24)
	var ws BatchWorkspace
	var ids []uint64
	for round := 0; round < 12; round++ {
		switch round % 4 {
		case 0: // insert
			e := kindEntries(t, rng, MatchTernary, 1)[0]
			id, err := tab.Insert(e)
			if err != nil {
				t.Fatal(err)
			}
			ids = append(ids, id)
		case 1: // full reprogram
			if err := tab.Program(fourByteKey(), Action{Type: ActionDigest},
				kindEntries(t, rng, MatchTernary, 10+round)); err != nil {
				t.Fatal(err)
			}
			ids = nil
		case 2: // delete when possible
			if len(ids) > 0 {
				if err := tab.Delete(ids[0]); err != nil {
					t.Fatal(err)
				}
				ids = ids[1:]
			}
		}
		active := allIdx(len(pkts))
		tab.LookupBatch(pkts, active, &ws, 0)
		for i, pkt := range pkts {
			// Lookup moves counters; only action/matched identity matters.
			wantAct, wantMatched := tab.Lookup(pkt.Bytes)
			if ws.acts[i] != wantAct || ws.matched[i] != wantMatched {
				t.Fatalf("round %d pkt %d: batch (%+v,%v) != lookup (%+v,%v)",
					round, i, ws.acts[i], ws.matched[i], wantAct, wantMatched)
			}
		}
	}
}

// TestRunTablesBatchMatchesRunTables builds a multi-table pipeline
// (set-class, digest-on-miss detector, terminal allow/drop) and checks
// batch verdicts and digest accounting against the per-packet engine.
func TestRunTablesBatchMatchesRunTables(t *testing.T) {
	build := func() *Pipeline {
		rng := rand.New(rand.NewSource(9))
		p := NewPipeline(64)
		cls := NewTable("classify", MatchTernary, fourByteKey(), 0, Action{Type: ActionNop})
		if err := cls.Program(fourByteKey(), Action{Type: ActionNop}, []Entry{
			{Priority: 1, Value: []byte{1, 0, 0, 0}, Mask: []byte{0xff, 0, 0, 0}, Action: Action{Type: ActionSetClass, Class: 3}},
			{Priority: 1, Value: []byte{2, 0, 0, 0}, Mask: []byte{0xff, 0, 0, 0}, Action: Action{Type: ActionDrop, Class: 4}},
		}); err != nil {
			t.Fatal(err)
		}
		det := NewTable("det", MatchRange, fourByteKey(), 0, Action{Type: ActionDigest})
		if err := det.Program(fourByteKey(), Action{Type: ActionDigest},
			kindEntries(t, rng, MatchRange, 12)); err != nil {
			t.Fatal(err)
		}
		if err := p.AddTable(cls); err != nil {
			t.Fatal(err)
		}
		if err := p.AddTable(det); err != nil {
			t.Fatal(err)
		}
		return p
	}
	batchP, refP := build(), build()
	pkts := randFrames(rand.New(rand.NewSource(10)), 400, 24)
	var ws BatchWorkspace
	out := make([]Verdict, len(pkts))
	batchP.RunTablesBatch(batchP.TableSnapshot(), pkts, allIdx(len(pkts)), &ws, out)
	refOut := refP.ProcessBatch(pkts, nil)
	for i := range pkts {
		if out[i] != refOut[i] {
			t.Fatalf("pkt %d: batch %+v != reference %+v", i, out[i], refOut[i])
		}
	}
	bq, rq := batchP.DigestQueueStats(), refP.DigestQueueStats()
	if bq.Offered != rq.Offered || bq.Queued != rq.Queued || bq.Dropped != rq.Dropped || bq.Depth != rq.Depth {
		t.Fatalf("digest accounting diverged: batch %+v ref %+v", bq, rq)
	}
	if bq.Queued != bq.Drained+uint64(bq.Depth) || bq.Offered != bq.Drained+bq.Dropped+uint64(bq.Depth) {
		t.Fatalf("digest invariants violated: %+v", bq)
	}
	// Drained digests reference the same packets in the same order.
	bd, rd := batchP.DrainDigests(0), refP.DrainDigests(0)
	if len(bd) != len(rd) {
		t.Fatalf("drained %d vs %d digests", len(bd), len(rd))
	}
	for i := range bd {
		if bd[i].Pkt != rd[i].Pkt || bd[i].Table != rd[i].Table {
			t.Fatalf("digest %d: batch {%s %p} != ref {%s %p}", i, bd[i].Table, bd[i].Pkt, rd[i].Table, rd[i].Pkt)
		}
	}
}

// TestQueueDigestBatchOverflow fills the queue past capacity in one
// batch: accounting must mirror per-digest enqueueing exactly.
func TestQueueDigestBatchOverflow(t *testing.T) {
	p := NewPipeline(4)
	ds := make([]Digest, 10)
	for i := range ds {
		ds[i] = Digest{Table: "t", Pkt: &packet.Packet{}}
	}
	p.queueDigestBatch(ds)
	st := p.DigestQueueStats()
	if st.Offered != 10 || st.Queued != 4 || st.Dropped != 6 || st.Depth != 4 {
		t.Fatalf("overflow accounting = %+v", st)
	}
	for _, d := range p.DrainDigests(0) {
		if d.At.IsZero() {
			t.Fatal("batched digest missing enqueue timestamp")
		}
	}
}

// TestLookupBatchWideKeySkipsCache programs a key wider than the flow
// cache can hold; agreement must still hold via the index path.
func TestLookupBatchWideKeySkipsCache(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	wide := []FieldSpec{{Name: "w", Offset: 0, Width: 24}}
	tab := NewTable("wide", MatchExact, wide, 0, Action{Type: ActionDrop, Class: 1})
	val := make([]byte, 24)
	rng.Read(val)
	if _, err := tab.Insert(Entry{Value: val, Action: Action{Type: ActionAllow, Class: 2}}); err != nil {
		t.Fatal(err)
	}
	hitPkt := &packet.Packet{Bytes: append(append([]byte(nil), val...), 0xaa)}
	missPkt := &packet.Packet{Bytes: make([]byte, 32)}
	pkts := []*packet.Packet{hitPkt, missPkt, hitPkt}
	var ws BatchWorkspace
	tab.LookupBatch(pkts, allIdx(len(pkts)), &ws, 0)
	for i, pkt := range pkts {
		wantAct, wantMatched := tab.Lookup(pkt.Bytes)
		if ws.acts[i] != wantAct || ws.matched[i] != wantMatched {
			t.Fatalf("pkt %d: batch (%+v,%v) != lookup (%+v,%v)", i, ws.acts[i], ws.matched[i], wantAct, wantMatched)
		}
	}
}
