package p4

import (
	"fmt"

	"p4guard/internal/packet"
)

// ParsedHeader is one header instance located by the parser.
type ParsedHeader struct {
	Name   string
	Offset int
	Length int
}

// ParseResult is the parser's output for one frame.
type ParseResult struct {
	Headers []ParsedHeader
	// Accepted reports whether the frame reached an accepting state.
	Accepted bool
}

// Has reports whether a header with the given name was parsed.
func (r *ParseResult) Has(name string) bool {
	for _, h := range r.Headers {
		if h.Name == name {
			return true
		}
	}
	return false
}

// ParseState is one node of a parse graph: it extracts a header and picks
// the next state from the frame contents.
type ParseState struct {
	Name string
	// Extract returns the header length consumed at off, or an error when
	// the frame does not decode.
	Extract func(frame []byte, off int) (int, error)
	// Next returns the next state name, or "" to accept.
	Next func(frame []byte, off, hdrLen int) string
}

// Parser is a P4-style parse graph.
type Parser struct {
	states map[string]*ParseState
	start  string
}

// NewParser builds a parser starting at the named state.
func NewParser(start string, states ...*ParseState) (*Parser, error) {
	m := make(map[string]*ParseState, len(states))
	for _, s := range states {
		if _, dup := m[s.Name]; dup {
			return nil, fmt.Errorf("p4: duplicate parse state %q", s.Name)
		}
		m[s.Name] = s
	}
	if _, ok := m[start]; !ok {
		return nil, fmt.Errorf("p4: start state %q undefined", start)
	}
	return &Parser{states: m, start: start}, nil
}

// Parse runs the graph over the frame. A state chain longer than the state
// count is treated as a loop and rejected.
func (p *Parser) Parse(frame []byte) ParseResult {
	var res ParseResult
	off := 0
	cur := p.start
	for steps := 0; steps <= len(p.states); steps++ {
		st, ok := p.states[cur]
		if !ok {
			return res // dangling transition: reject
		}
		n, err := st.Extract(frame, off)
		if err != nil {
			return res
		}
		res.Headers = append(res.Headers, ParsedHeader{Name: st.Name, Offset: off, Length: n})
		next := st.Next(frame, off, n)
		off += n
		if next == "" {
			res.Accepted = true
			return res
		}
		cur = next
	}
	return res // loop guard tripped: reject
}

// Accepts runs the graph over the frame and reports only whether it
// reaches an accepting state. Unlike Parse it records no headers, so the
// data-plane hot path pays no allocation for parse accounting.
func (p *Parser) Accepts(frame []byte) bool {
	off := 0
	cur := p.start
	for steps := 0; steps <= len(p.states); steps++ {
		st, ok := p.states[cur]
		if !ok {
			return false // dangling transition: reject
		}
		n, err := st.Extract(frame, off)
		if err != nil {
			return false
		}
		next := st.Next(frame, off, n)
		off += n
		if next == "" {
			return true
		}
		cur = next
	}
	return false // loop guard tripped: reject
}

// StandardParser returns the parse graph for a link type, covering the
// protocol stacks the IoT scenarios use.
func StandardParser(link packet.LinkType) (*Parser, error) {
	switch link {
	case packet.LinkEthernet:
		return NewParser("ethernet",
			&ParseState{
				Name: "ethernet",
				Extract: func(f []byte, off int) (int, error) {
					var h packet.Ethernet
					return h.Unmarshal(f[min(off, len(f)):])
				},
				Next: func(f []byte, off, n int) string {
					var h packet.Ethernet
					if _, err := h.Unmarshal(f[off:]); err != nil {
						return "reject"
					}
					switch h.EtherType {
					case packet.EtherTypeIPv4:
						return "ipv4"
					case packet.EtherTypeARP:
						return "arp"
					default:
						return ""
					}
				},
			},
			&ParseState{
				Name: "arp",
				Extract: func(f []byte, off int) (int, error) {
					var h packet.ARP
					if off > len(f) {
						return 0, packet.ErrTruncated
					}
					return h.Unmarshal(f[off:])
				},
				Next: func([]byte, int, int) string { return "" },
			},
			&ParseState{
				Name: "ipv4",
				Extract: func(f []byte, off int) (int, error) {
					var h packet.IPv4
					if off > len(f) {
						return 0, packet.ErrTruncated
					}
					return h.Unmarshal(f[off:])
				},
				Next: func(f []byte, off, n int) string {
					var h packet.IPv4
					if _, err := h.Unmarshal(f[off:]); err != nil {
						return "reject"
					}
					switch h.Protocol {
					case packet.ProtoTCP:
						return "tcp"
					case packet.ProtoUDP:
						return "udp"
					case packet.ProtoICMP:
						return "icmp"
					default:
						return ""
					}
				},
			},
			&ParseState{
				Name: "tcp",
				Extract: func(f []byte, off int) (int, error) {
					var h packet.TCP
					if off > len(f) {
						return 0, packet.ErrTruncated
					}
					return h.Unmarshal(f[off:])
				},
				Next: func([]byte, int, int) string { return "" },
			},
			&ParseState{
				Name: "udp",
				Extract: func(f []byte, off int) (int, error) {
					var h packet.UDP
					if off > len(f) {
						return 0, packet.ErrTruncated
					}
					return h.Unmarshal(f[off:])
				},
				Next: func([]byte, int, int) string { return "" },
			},
			&ParseState{
				Name: "icmp",
				Extract: func(f []byte, off int) (int, error) {
					var h packet.ICMP
					if off > len(f) {
						return 0, packet.ErrTruncated
					}
					return h.Unmarshal(f[off:])
				},
				Next: func([]byte, int, int) string { return "" },
			},
		)
	case packet.LinkIEEE802154:
		return NewParser("mac",
			&ParseState{
				Name: "mac",
				Extract: func(f []byte, off int) (int, error) {
					var h packet.IEEE802154
					if off > len(f) {
						return 0, packet.ErrTruncated
					}
					return h.Unmarshal(f[off:])
				},
				Next: func(f []byte, off, n int) string {
					var h packet.IEEE802154
					if _, err := h.Unmarshal(f[off:]); err != nil {
						return "reject"
					}
					if h.FrameType == packet.FrameData && len(f) >= off+n+packet.ZigbeeNWKLen {
						return "nwk"
					}
					return ""
				},
			},
			&ParseState{
				Name: "nwk",
				Extract: func(f []byte, off int) (int, error) {
					var h packet.ZigbeeNWK
					if off > len(f) {
						return 0, packet.ErrTruncated
					}
					return h.Unmarshal(f[off:])
				},
				Next: func([]byte, int, int) string { return "" },
			},
		)
	case packet.LinkBLE:
		return NewParser("ll",
			&ParseState{
				Name: "ll",
				Extract: func(f []byte, off int) (int, error) {
					var h packet.BLELinkLayer
					if off > len(f) {
						return 0, packet.ErrTruncated
					}
					return h.Unmarshal(f[off:])
				},
				Next: func([]byte, int, int) string { return "" },
			},
		)
	default:
		return nil, fmt.Errorf("p4: no standard parser for link %v", link)
	}
}
