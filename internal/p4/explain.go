package p4

import (
	"p4guard/internal/match"
	"p4guard/internal/packet"
)

// Explainability for the behavioural data plane: Table.Explain
// reconstructs one lookup with full evidence — the winning entry, the
// per-byte value/mask comparison that made it win, and the
// higher-priority entries it beat — and Pipeline.Explain runs a packet
// through the staged pipeline the same way RunTables does, collecting
// one table explanation per stage.
//
// Explain is side-effect-free: it never bumps hit/miss or direct
// counters and never queues digests, so it can be called on live
// traffic (sampled or on demand) without distorting the accounting the
// telemetry layer exports. Winner selection replicates each match
// kind's Lookup algorithm exactly — including the partitioned ternary
// store's (priority, ID) tie-breaking — so Explain and Lookup can never
// disagree on the verdict.

// EntryByteExplain compares one key byte against one entry.
type EntryByteExplain struct {
	// Pos is the key byte position; Field/Offset identify the header
	// byte it was extracted from.
	Pos    int    `json:"pos"`
	Field  string `json:"field"`
	Offset int    `json:"offset"`
	// Key is the packet's byte at that position.
	Key byte `json:"key"`
	// Value and Mask are the entry's ternary view at this byte: for
	// ternary entries they are the stored value/mask, for exact entries
	// mask is 0xff, for LPM the prefix bits, and for range entries the
	// fixed-prefix bits shared across [Lo, Hi].
	Value byte `json:"value"`
	Mask  byte `json:"mask"`
	// MatchedBits marks the mask bits where the key agrees with Value
	// (MSB first) — the bit-expanded positions that matched.
	MatchedBits byte `json:"matched_bits"`
	// Lo and Hi bound the admitted range (value..value for exact and
	// ternary-on-full-mask bytes; only meaningful as a range for range
	// entries).
	Lo byte `json:"lo"`
	Hi byte `json:"hi"`
	// Matched reports whether this byte admitted the key.
	Matched bool `json:"matched"`
}

// EntryExplain annotates one entry's comparison against the key.
type EntryExplain struct {
	ID       uint64 `json:"id"`
	Priority int    `json:"priority"`
	// MatchOrder is the entry's position in the table's internal match
	// order (0 first).
	MatchOrder int    `json:"match_order"`
	Action     string `json:"action"`
	Class      int    `json:"class"`
	// Matched reports whether every byte admitted the key.
	Matched bool `json:"matched"`
	// Bytes holds per-byte comparisons; for a losing entry the first
	// one with Matched == false is the disqualifying byte.
	Bytes []EntryByteExplain `json:"bytes"`
}

// TableExplain is the full evidence for one table lookup.
type TableExplain struct {
	Table string    `json:"table"`
	Kind  MatchKind `json:"-"`
	// KindName is Kind rendered for JSON consumers.
	KindName string `json:"kind"`
	// Key is the extracted match key.
	Key []byte `json:"key"`
	// Winner is the entry Lookup would fire; nil when the default
	// action applies.
	Winner *EntryExplain `json:"winner,omitempty"`
	// Beaten lists higher-match-order entries the winner beat (each
	// failed to match), capped at match.MaxBeaten; BeatenTotal is the
	// uncapped count.
	Beaten      []EntryExplain `json:"beaten,omitempty"`
	BeatenTotal int            `json:"beaten_total"`
	// Action is the action the lookup resolves to (the winner's, or the
	// table default); Matched mirrors Lookup's second return.
	Action  Action `json:"-"`
	Matched bool   `json:"matched"`
	// ActionName and Class render Action for JSON consumers.
	ActionName string `json:"action"`
	Class      int    `json:"class"`
	// DefaultUsed reports that the table's default action applied.
	DefaultUsed bool `json:"default_used"`
}

// explainEntryBytes builds the per-byte comparison of key against e for
// the given match kind.
func explainEntryBytes(kind MatchKind, key []byte, specs []FieldSpec, e *Entry) ([]EntryByteExplain, bool) {
	out := make([]EntryByteExplain, len(key))
	all := true
	pos := 0
	for _, s := range specs {
		for i := 0; i < s.Width && pos < len(key); i++ {
			k := key[pos]
			var value, mask, lo, hi byte
			switch kind {
			case MatchExact:
				value, mask = e.Value[pos], 0xff
				lo, hi = value, value
			case MatchTernary:
				value, mask = e.Value[pos], e.Mask[pos]
				lo, hi = value, value|^mask
			case MatchLPM:
				mask = prefixMaskByte(e.PrefixLen, pos)
				value = e.Value[pos] & mask
				lo, hi = value, value|^mask
			case MatchRange:
				lo, hi = e.Lo[pos], e.Hi[pos]
				value, mask = match.BitsOfRange(lo, hi)
			}
			matched := k >= lo && k <= hi
			if kind != MatchRange {
				matched = k&mask == value
			}
			out[pos] = EntryByteExplain{
				Pos: pos, Field: s.Name, Offset: s.Offset + i,
				Key: k, Value: value, Mask: mask,
				MatchedBits: ^(k ^ value) & mask,
				Lo:          lo, Hi: hi,
				Matched: matched,
			}
			if !matched {
				all = false
			}
			pos++
		}
	}
	return out, all
}

// prefixMaskByte returns the mask byte at position pos of a prefixLen-bit
// LPM prefix.
func prefixMaskByte(prefixLen, pos int) byte {
	bits := prefixLen - pos*8
	switch {
	case bits >= 8:
		return 0xff
	case bits <= 0:
		return 0
	default:
		return byte(0xff << (8 - bits))
	}
}

// explainEntry builds an EntryExplain for entry e at match order mo.
func explainEntry(st *lookupState, key []byte, e *Entry, mo int) EntryExplain {
	bytes, all := explainEntryBytes(st.kind, key, st.key, e)
	return EntryExplain{
		ID: e.ID, Priority: e.Priority, MatchOrder: mo,
		Action: e.Action.Type.String(), Class: e.Action.Class,
		Matched: all, Bytes: bytes,
	}
}

// winnerEntry replicates Lookup's winner selection on a snapshot,
// returning the winning entry and its match-order index (-1 on miss).
// It must stay in lockstep with Table.Lookup — the ternary arm probes
// the same partitioned trie store with the same (priority, ID)
// tie-breaking, so Explain and Lookup can never disagree.
func winnerEntry(st *lookupState, key []byte) (*Entry, int) {
	var hit *Entry
	switch st.kind {
	case MatchExact:
		hit = st.exact[string(key)]
	case MatchTernary:
		hit = st.tstore.find(key, make([]byte, len(key)))
	case MatchLPM:
		for _, e := range st.entries {
			if prefixMatch(key, e.Value, e.PrefixLen) {
				return e, matchOrderOf(st, e)
			}
		}
	case MatchRange:
		if st.rangeIdx != nil {
			if row, ok := st.rangeIdx.Find(key); ok {
				return st.entries[row], row
			}
			return nil, -1
		}
		for _, e := range st.entries {
			if rangeMatch(key, e.Lo, e.Hi) {
				return e, matchOrderOf(st, e)
			}
		}
	}
	if hit == nil {
		return nil, -1
	}
	return hit, matchOrderOf(st, hit)
}

// matchOrderOf returns e's index in the snapshot's entry order.
func matchOrderOf(st *lookupState, e *Entry) int {
	for i, cand := range st.entries {
		if cand == e {
			return i
		}
	}
	return -1
}

// Explain reconstructs the lookup of frame with full evidence and no
// side effects. Explain(frame).Action and .Matched always equal what
// Lookup(frame) returns for the same table generation.
func (t *Table) Explain(frame []byte) TableExplain {
	st := t.state.Load()
	key := ExtractKey(frame, st.key)
	ex := TableExplain{
		Table: t.Name, Kind: st.kind, KindName: st.kind.String(),
		Key: key,
	}
	hit, mo := winnerEntry(st, key)
	if hit == nil {
		ex.Action, ex.Matched, ex.DefaultUsed = st.def, false, true
		ex.BeatenTotal = len(st.entries)
		for i := 0; i < len(st.entries) && len(ex.Beaten) < match.MaxBeaten; i++ {
			ex.Beaten = append(ex.Beaten, explainEntry(st, key, st.entries[i], i))
		}
	} else {
		ex.Action, ex.Matched = hit.Action, true
		w := explainEntry(st, key, hit, mo)
		ex.Winner = &w
		// Entries ahead of the winner in match order lost by failing to
		// match (exact tables keep no order; mo is -1 there and the map
		// admits exactly one candidate, so nothing was beaten).
		if mo > 0 {
			ex.BeatenTotal = mo
			for i := 0; i < mo && len(ex.Beaten) < match.MaxBeaten; i++ {
				ex.Beaten = append(ex.Beaten, explainEntry(st, key, st.entries[i], i))
			}
		}
	}
	ex.ActionName = ex.Action.Type.String()
	ex.Class = ex.Action.Class
	return ex
}

// PacketExplain is the pipeline-level explanation of one packet: the
// verdict RunTables would return plus one TableExplain per table the
// packet traversed (stages after a terminal allow/drop are not
// consulted, mirroring the forwarding path).
type PacketExplain struct {
	Verdict Verdict        `json:"verdict"`
	Tables  []TableExplain `json:"tables"`
}

// Explain runs the packet through the pipeline's current table snapshot
// exactly as Process does, but side-effect-free: no counters move and
// ActionDigest marks the verdict without enqueueing a digest. The
// control flow mirrors RunTables statement for statement, so
// Explain(pkt).Verdict equals Process(pkt)'s verdict for the same table
// generation.
func (p *Pipeline) Explain(pkt *packet.Packet) PacketExplain {
	ex := PacketExplain{Verdict: Verdict{Allowed: true}}
	for _, t := range p.TableSnapshot() {
		te := t.Explain(pkt.Bytes)
		ex.Tables = append(ex.Tables, te)
		ex.Verdict.Matched = ex.Verdict.Matched || te.Matched
		switch te.Action.Type {
		case ActionAllow:
			ex.Verdict.Allowed = true
			ex.Verdict.Class = te.Action.Class
			return ex
		case ActionDrop:
			ex.Verdict.Allowed = false
			ex.Verdict.Class = te.Action.Class
			return ex
		case ActionDigest:
			ex.Verdict.Digested = true
		case ActionSetClass:
			ex.Verdict.Class = te.Action.Class
		case ActionNop:
		}
	}
	return ex
}
