package p4

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"p4guard/internal/packet"
)

// Verdict is a pipeline's final decision on a packet.
type Verdict struct {
	// Allowed reports whether the packet is forwarded.
	Allowed bool `json:"allowed"`
	// Class is the last class metadata written by ActionSetClass, or the
	// class carried by the terminal action.
	Class int `json:"class"`
	// Matched reports whether any non-default entry fired.
	Matched bool `json:"matched"`
	// Digested reports whether a digest was queued for the controller.
	Digested bool `json:"digested"`
}

// Digest is a packet sample queued for the controller. At is the
// enqueue wall time, stamped so the digest pump can account queue wait
// (the digest_wait trace stage) from the moment the sample was taken.
type Digest struct {
	Table string
	Pkt   *packet.Packet
	At    time.Time
}

// Pipeline is an ordered list of tables applied to every packet, plus a
// bounded digest queue. It models a single P4 ingress control block.
type Pipeline struct {
	mu      sync.RWMutex
	tables  []*Table
	byName  map[string]*Table
	snap    atomic.Pointer[[]*Table] // published copy of tables for lock-free reads
	digests []Digest
	offered uint64 // digests ever presented to the queue (accepted + dropped)
	queued  uint64 // digests ever enqueued
	drained uint64 // digests handed to DrainDigests callers
	dropped uint64 // digests dropped due to a full queue
	maxQ    int
}

// NewPipeline builds a pipeline with the given digest queue capacity
// (<=0 means 1024).
func NewPipeline(digestCap int) *Pipeline {
	if digestCap <= 0 {
		digestCap = 1024
	}
	return &Pipeline{byName: make(map[string]*Table), maxQ: digestCap}
}

// AddTable appends a table to the pipeline.
func (p *Pipeline) AddTable(t *Table) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if _, dup := p.byName[t.Name]; dup {
		return fmt.Errorf("p4: duplicate table %q", t.Name)
	}
	p.tables = append(p.tables, t)
	p.byName[t.Name] = t
	snap := make([]*Table, len(p.tables))
	copy(snap, p.tables)
	p.snap.Store(&snap)
	return nil
}

// Table returns the named table.
func (p *Pipeline) Table(name string) (*Table, error) {
	p.mu.RLock()
	defer p.mu.RUnlock()
	t, ok := p.byName[name]
	if !ok {
		return nil, fmt.Errorf("%q: %w", name, ErrNoSuchTable)
	}
	return t, nil
}

// Tables returns the tables in pipeline order.
func (p *Pipeline) Tables() []*Table {
	p.mu.RLock()
	defer p.mu.RUnlock()
	out := make([]*Table, len(p.tables))
	copy(out, p.tables)
	return out
}

// Process runs the packet through the pipeline and returns the verdict.
// The default disposition when no terminal action fires is allow (a
// firewall that fails open for unmatched traffic; the detector's default
// action usually overrides this by digesting or dropping).
func (p *Pipeline) Process(pkt *packet.Packet) Verdict {
	return p.RunTables(p.TableSnapshot(), pkt)
}

// TableSnapshot returns the current table list for use with RunTables.
// The snapshot is published atomically by AddTable, so reading it costs
// one atomic load and no lock; the slice must be treated as immutable.
func (p *Pipeline) TableSnapshot() []*Table {
	if snap := p.snap.Load(); snap != nil {
		return *snap
	}
	return nil
}

// ProcessBatch runs every packet through the pipeline, snapshotting the
// table list once for the whole batch, and writes verdicts into out
// (grown if needed). It returns the verdict slice.
func (p *Pipeline) ProcessBatch(pkts []*packet.Packet, out []Verdict) []Verdict {
	if cap(out) < len(pkts) {
		out = make([]Verdict, len(pkts))
	}
	out = out[:len(pkts)]
	tables := p.TableSnapshot()
	for i, pkt := range pkts {
		out[i] = p.RunTables(tables, pkt)
	}
	return out
}

// RunTables applies a table snapshot (from TableSnapshot) to one packet.
func (p *Pipeline) RunTables(tables []*Table, pkt *packet.Packet) Verdict {
	v := Verdict{Allowed: true}
	for _, t := range tables {
		act, matched := t.Lookup(pkt.Bytes)
		v.Matched = v.Matched || matched
		switch act.Type {
		case ActionAllow:
			v.Allowed = true
			v.Class = act.Class
			return v
		case ActionDrop:
			v.Allowed = false
			v.Class = act.Class
			return v
		case ActionDigest:
			p.queueDigest(Digest{Table: t.Name, Pkt: pkt})
			v.Digested = true
		case ActionSetClass:
			v.Class = act.Class
		case ActionNop:
		}
	}
	return v
}

func (p *Pipeline) queueDigest(d Digest) {
	d.At = time.Now()
	p.mu.Lock()
	defer p.mu.Unlock()
	p.offered++
	if len(p.digests) >= p.maxQ {
		p.dropped++
		return
	}
	p.queued++
	p.digests = append(p.digests, d)
}

// DrainDigests removes and returns up to max queued digests (all when
// max <= 0), crediting the drained counter so queue accounting balances:
// queued == drained + depth at all times, and dropped records overflow
// loss separately.
func (p *Pipeline) DrainDigests(max int) []Digest {
	p.mu.Lock()
	defer p.mu.Unlock()
	n := len(p.digests)
	if max > 0 && max < n {
		n = max
	}
	out := make([]Digest, n)
	copy(out, p.digests[:n])
	p.digests = p.digests[n:]
	p.drained += uint64(n)
	return out
}

// DigestQueueStats is a snapshot of digest-queue accounting.
type DigestQueueStats struct {
	// Depth is the current queue occupancy; Capacity its bound.
	Depth    int
	Capacity int
	// Offered counts every digest presented to the queue; Queued those
	// accepted; Drained those handed to the controller side; Dropped those
	// lost to overflow. Two invariants always hold:
	//   Queued  == Drained + Depth
	//   Offered == Drained + Dropped + Depth
	Offered uint64
	Queued  uint64
	Drained uint64
	Dropped uint64
}

// DigestQueueStats returns a consistent snapshot of the queue counters.
func (p *Pipeline) DigestQueueStats() DigestQueueStats {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return DigestQueueStats{
		Depth:    len(p.digests),
		Capacity: p.maxQ,
		Offered:  p.offered,
		Queued:   p.queued,
		Drained:  p.drained,
		Dropped:  p.dropped,
	}
}

// DroppedDigests reports digests lost to queue overflow.
func (p *Pipeline) DroppedDigests() uint64 {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.dropped
}
