package p4

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"p4guard/internal/packet"
)

func key1() []FieldSpec { return []FieldSpec{{Name: "b0", Offset: 0, Width: 1}} }

func TestMatchKindActionStrings(t *testing.T) {
	for _, k := range []MatchKind{MatchExact, MatchTernary, MatchLPM, MatchRange} {
		if k.String() == "" {
			t.Fatal("empty kind name")
		}
	}
	for _, a := range []ActionType{ActionAllow, ActionDrop, ActionDigest, ActionSetClass, ActionNop} {
		if a.String() == "" {
			t.Fatal("empty action name")
		}
	}
}

func TestExtractKeyPadsMissing(t *testing.T) {
	specs := []FieldSpec{{Offset: 1, Width: 2}, {Offset: 10, Width: 1}}
	key := ExtractKey([]byte{9, 8, 7}, specs)
	if len(key) != 3 || key[0] != 8 || key[1] != 7 || key[2] != 0 {
		t.Fatalf("key = %v", key)
	}
	if KeyWidth(specs) != 3 {
		t.Fatalf("KeyWidth = %d", KeyWidth(specs))
	}
}

func TestExactTable(t *testing.T) {
	tbl := NewTable("fw", MatchExact, key1(), 0, Action{Type: ActionNop})
	id, err := tbl.Insert(Entry{Value: []byte{42}, Action: Action{Type: ActionDrop, Class: 1}})
	if err != nil {
		t.Fatal(err)
	}
	act, matched := tbl.Lookup([]byte{42})
	if !matched || act.Type != ActionDrop {
		t.Fatalf("lookup = %v matched=%v", act, matched)
	}
	act, matched = tbl.Lookup([]byte{43})
	if matched || act.Type != ActionNop {
		t.Fatalf("miss = %v matched=%v", act, matched)
	}
	hits, err := tbl.EntryHits(id)
	if err != nil || hits != 1 {
		t.Fatalf("hits=%d err=%v", hits, err)
	}
	st := tbl.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Entries != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if err := tbl.Delete(id); err != nil {
		t.Fatal(err)
	}
	if _, matched := tbl.Lookup([]byte{42}); matched {
		t.Fatal("deleted entry still matches")
	}
	if err := tbl.Delete(id); err == nil {
		t.Fatal("double delete succeeded")
	}
}

func TestTernaryPriority(t *testing.T) {
	tbl := NewTable("det", MatchTernary, key1(), 0, Action{Type: ActionAllow})
	if _, err := tbl.Insert(Entry{
		Priority: 1, Value: []byte{0x00}, Mask: []byte{0x00},
		Action: Action{Type: ActionAllow},
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := tbl.Insert(Entry{
		Priority: 10, Value: []byte{0x80}, Mask: []byte{0x80},
		Action: Action{Type: ActionDrop, Class: 1},
	}); err != nil {
		t.Fatal(err)
	}
	if act, _ := tbl.Lookup([]byte{0x90}); act.Type != ActionDrop {
		t.Fatalf("high-priority drop not chosen: %v", act)
	}
	if act, _ := tbl.Lookup([]byte{0x10}); act.Type != ActionAllow {
		t.Fatalf("wildcard allow not chosen: %v", act)
	}
}

func TestTernaryValueOutsideMaskRejected(t *testing.T) {
	tbl := NewTable("det", MatchTernary, key1(), 0, Action{Type: ActionNop})
	_, err := tbl.Insert(Entry{Value: []byte{0x01}, Mask: []byte{0x00}})
	if !errors.Is(err, ErrBadEntry) {
		t.Fatalf("err = %v, want ErrBadEntry", err)
	}
}

func TestLPMLongestPrefixWins(t *testing.T) {
	specs := []FieldSpec{{Name: "ip.dst", Offset: 0, Width: 4}}
	tbl := NewTable("routes", MatchLPM, specs, 0, Action{Type: ActionDrop})
	if _, err := tbl.Insert(Entry{
		Value: []byte{10, 0, 0, 0}, PrefixLen: 8, Action: Action{Type: ActionSetClass, Class: 1},
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := tbl.Insert(Entry{
		Value: []byte{10, 1, 0, 0}, PrefixLen: 16, Action: Action{Type: ActionSetClass, Class: 2},
	}); err != nil {
		t.Fatal(err)
	}
	if act, _ := tbl.Lookup([]byte{10, 1, 2, 3}); act.Class != 2 {
		t.Fatalf("longest prefix not chosen: %v", act)
	}
	if act, _ := tbl.Lookup([]byte{10, 9, 2, 3}); act.Class != 1 {
		t.Fatalf("/8 not chosen: %v", act)
	}
	if _, matched := tbl.Lookup([]byte{11, 0, 0, 1}); matched {
		t.Fatal("miss matched")
	}
	if _, err := tbl.Insert(Entry{Value: []byte{1, 2, 3, 4}, PrefixLen: 33}); !errors.Is(err, ErrBadEntry) {
		t.Fatal("accepted prefix > width")
	}
}

// TestLPMPartialByteBoundary checks non-multiple-of-8 prefixes.
func TestLPMPartialByteBoundary(t *testing.T) {
	specs := []FieldSpec{{Offset: 0, Width: 1}}
	tbl := NewTable("lpm", MatchLPM, specs, 0, Action{Type: ActionNop})
	if _, err := tbl.Insert(Entry{Value: []byte{0b1010_0000}, PrefixLen: 3, Action: Action{Type: ActionDrop}}); err != nil {
		t.Fatal(err)
	}
	if _, matched := tbl.Lookup([]byte{0b1011_1111}); !matched {
		t.Fatal("prefix 101 should match 1011_1111")
	}
	if _, matched := tbl.Lookup([]byte{0b1000_0000}); matched {
		t.Fatal("prefix 101 should not match 1000_0000")
	}
}

func TestRangeTable(t *testing.T) {
	tbl := NewTable("rng", MatchRange, key1(), 0, Action{Type: ActionNop})
	if _, err := tbl.Insert(Entry{
		Priority: 1, Lo: []byte{10}, Hi: []byte{20}, Action: Action{Type: ActionDrop},
	}); err != nil {
		t.Fatal(err)
	}
	if _, matched := tbl.Lookup([]byte{15}); !matched {
		t.Fatal("15 in [10,20] missed")
	}
	if _, matched := tbl.Lookup([]byte{21}); matched {
		t.Fatal("21 matched [10,20]")
	}
	if _, err := tbl.Insert(Entry{Lo: []byte{5}, Hi: []byte{4}}); !errors.Is(err, ErrBadEntry) {
		t.Fatal("accepted lo>hi")
	}
}

func TestTableFull(t *testing.T) {
	tbl := NewTable("small", MatchExact, key1(), 1, Action{Type: ActionNop})
	if _, err := tbl.Insert(Entry{Value: []byte{1}}); err != nil {
		t.Fatal(err)
	}
	if _, err := tbl.Insert(Entry{Value: []byte{2}}); !errors.Is(err, ErrTableFull) {
		t.Fatalf("err = %v, want ErrTableFull", err)
	}
}

func TestTableClear(t *testing.T) {
	tbl := NewTable("c", MatchExact, key1(), 0, Action{Type: ActionNop})
	if _, err := tbl.Insert(Entry{Value: []byte{1}}); err != nil {
		t.Fatal(err)
	}
	tbl.Clear()
	if tbl.Len() != 0 {
		t.Fatal("Clear left entries")
	}
	if _, matched := tbl.Lookup([]byte{1}); matched {
		t.Fatal("cleared entry still matches")
	}
}

// TestTernaryAgainstReference cross-checks table lookup against a direct
// scan for random entries and keys.
func TestTernaryAgainstReference(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		specs := []FieldSpec{{Offset: 0, Width: 2}}
		tbl := NewTable("t", MatchTernary, specs, 0, Action{Type: ActionNop})
		type ref struct {
			prio        int
			value, mask []byte
			class       int
		}
		var refs []ref
		for i := 0; i < 8; i++ {
			mask := []byte{byte(rng.Intn(256)), byte(rng.Intn(256))}
			value := []byte{byte(rng.Intn(256)) & mask[0], byte(rng.Intn(256)) & mask[1]}
			prio := rng.Intn(20)
			class := rng.Intn(5)
			if _, err := tbl.Insert(Entry{
				Priority: prio, Value: value, Mask: mask,
				Action: Action{Type: ActionSetClass, Class: class},
			}); err != nil {
				return false
			}
			refs = append(refs, ref{prio, value, mask, class})
		}
		for p := 0; p < 100; p++ {
			key := []byte{byte(rng.Intn(256)), byte(rng.Intn(256))}
			// Reference: highest priority match, earliest insert on ties.
			best := -1
			bestClass := -1
			for _, r := range refs {
				if key[0]&r.mask[0] == r.value[0] && key[1]&r.mask[1] == r.value[1] && r.prio > best {
					best = r.prio
					bestClass = r.class
				}
			}
			act, matched := tbl.Lookup(key)
			if (best >= 0) != matched {
				return false
			}
			if matched && act.Class != bestClass {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestPipelineFlow(t *testing.T) {
	p := NewPipeline(4)
	class := NewTable("classify", MatchExact, key1(), 0, Action{Type: ActionDigest})
	if _, err := class.Insert(Entry{Value: []byte{1}, Action: Action{Type: ActionSetClass, Class: 3}}); err != nil {
		t.Fatal(err)
	}
	verdict := NewTable("verdict", MatchExact, key1(), 0, Action{Type: ActionAllow})
	if _, err := verdict.Insert(Entry{Value: []byte{1}, Action: Action{Type: ActionDrop, Class: 3}}); err != nil {
		t.Fatal(err)
	}
	if err := p.AddTable(class); err != nil {
		t.Fatal(err)
	}
	if err := p.AddTable(verdict); err != nil {
		t.Fatal(err)
	}
	if err := p.AddTable(class); err == nil {
		t.Fatal("accepted duplicate table")
	}

	v := p.Process(&packet.Packet{Bytes: []byte{1}})
	if v.Allowed || v.Class != 3 || !v.Matched {
		t.Fatalf("verdict = %+v", v)
	}
	// Miss in classify -> digest queued, then verdict table allows.
	v = p.Process(&packet.Packet{Bytes: []byte{9}})
	if !v.Allowed || !v.Digested {
		t.Fatalf("miss verdict = %+v", v)
	}
	ds := p.DrainDigests(0)
	if len(ds) != 1 || ds[0].Table != "classify" {
		t.Fatalf("digests = %+v", ds)
	}
}

func TestPipelineDigestOverflow(t *testing.T) {
	p := NewPipeline(2)
	tbl := NewTable("d", MatchExact, key1(), 0, Action{Type: ActionDigest})
	if err := p.AddTable(tbl); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		p.Process(&packet.Packet{Bytes: []byte{byte(i)}})
	}
	if got := len(p.DrainDigests(0)); got != 2 {
		t.Fatalf("queued %d, want 2", got)
	}
	if p.DroppedDigests() != 3 {
		t.Fatalf("dropped %d, want 3", p.DroppedDigests())
	}
}

func TestPipelineTableAccess(t *testing.T) {
	p := NewPipeline(0)
	tbl := NewTable("x", MatchExact, key1(), 0, Action{Type: ActionNop})
	if err := p.AddTable(tbl); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Table("x"); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Table("y"); !errors.Is(err, ErrNoSuchTable) {
		t.Fatalf("err = %v", err)
	}
	if got := len(p.Tables()); got != 1 {
		t.Fatalf("Tables len %d", got)
	}
}

func TestStandardParserEthernet(t *testing.T) {
	parser, err := StandardParser(packet.LinkEthernet)
	if err != nil {
		t.Fatal(err)
	}
	eth := packet.Ethernet{EtherType: packet.EtherTypeIPv4}
	ip := packet.IPv4{Protocol: packet.ProtoTCP, TTL: 64}
	tcp := packet.TCP{SrcPort: 1, DstPort: 2}
	frame := eth.Marshal(nil)
	frame = ip.Marshal(frame, packet.TCPLen)
	frame = tcp.Marshal(frame)

	res := parser.Parse(frame)
	if !res.Accepted {
		t.Fatal("frame rejected")
	}
	for _, h := range []string{"ethernet", "ipv4", "tcp"} {
		if !res.Has(h) {
			t.Fatalf("missing header %s in %+v", h, res.Headers)
		}
	}
	// Truncated frame must reject.
	res = parser.Parse(frame[:20])
	if res.Accepted {
		t.Fatal("truncated frame accepted")
	}
}

func TestStandardParserZigbee(t *testing.T) {
	parser, err := StandardParser(packet.LinkIEEE802154)
	if err != nil {
		t.Fatal(err)
	}
	mac := packet.IEEE802154{FrameType: packet.FrameData, PANID: 1, Dst: 2, Src: 3}
	nwk := packet.ZigbeeNWK{FrameType: packet.ZigbeeData, Dst: 2, Src: 3, Radius: 5, Seq: 1}
	frame := nwk.Marshal(mac.Marshal(nil))
	res := parser.Parse(frame)
	if !res.Accepted || !res.Has("nwk") {
		t.Fatalf("zigbee parse = %+v", res)
	}
	// Ack frame has no NWK header.
	ack := packet.IEEE802154{FrameType: packet.FrameAck, PANID: 1, Dst: 2, Src: 3}
	res = parser.Parse(ack.Marshal(nil))
	if !res.Accepted || res.Has("nwk") {
		t.Fatalf("ack parse = %+v", res)
	}
}

func TestStandardParserBLEAndUnknown(t *testing.T) {
	parser, err := StandardParser(packet.LinkBLE)
	if err != nil {
		t.Fatal(err)
	}
	pdu := packet.BLELinkLayer{AccessAddress: packet.BLEAdvAccessAddress, PDUType: packet.BLEAdvInd}
	res := parser.Parse(pdu.Marshal(nil))
	if !res.Accepted || !res.Has("ll") {
		t.Fatalf("ble parse = %+v", res)
	}
	if _, err := StandardParser(packet.LinkType(99)); err == nil {
		t.Fatal("accepted unknown link")
	}
}

func TestParserRejectsLoopsAndDanglingStates(t *testing.T) {
	loop, err := NewParser("a",
		&ParseState{
			Name:    "a",
			Extract: func([]byte, int) (int, error) { return 0, nil },
			Next:    func([]byte, int, int) string { return "a" },
		},
	)
	if err != nil {
		t.Fatal(err)
	}
	if res := loop.Parse([]byte{1}); res.Accepted {
		t.Fatal("looping parser accepted")
	}
	dangling, err := NewParser("a",
		&ParseState{
			Name:    "a",
			Extract: func([]byte, int) (int, error) { return 1, nil },
			Next:    func([]byte, int, int) string { return "ghost" },
		},
	)
	if err != nil {
		t.Fatal(err)
	}
	if res := dangling.Parse([]byte{1}); res.Accepted {
		t.Fatal("dangling transition accepted")
	}
	if _, err := NewParser("missing"); err == nil {
		t.Fatal("accepted undefined start state")
	}
	if _, err := NewParser("a",
		&ParseState{Name: "a", Extract: func([]byte, int) (int, error) { return 0, nil }, Next: func([]byte, int, int) string { return "" }},
		&ParseState{Name: "a", Extract: func([]byte, int) (int, error) { return 0, nil }, Next: func([]byte, int, int) string { return "" }},
	); err == nil {
		t.Fatal("accepted duplicate states")
	}
}

// TestTernaryChurnDeterminism guards the tuple-space rebuild: priority
// ties resolve to the earliest-inserted entry, cross-tuple ordering obeys
// priority, and both invariants survive Insert/Delete churn.
func TestTernaryChurnDeterminism(t *testing.T) {
	tbl := NewTable("acl", MatchTernary, key1(), 0, Action{Type: ActionNop})

	// Two entries with identical (value,mask) and identical priority:
	// the first inserted must win, deterministically.
	idA, err := tbl.Insert(Entry{Priority: 5, Value: []byte{0x40}, Mask: []byte{0xc0},
		Action: Action{Type: ActionDrop, Class: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tbl.Insert(Entry{Priority: 5, Value: []byte{0x40}, Mask: []byte{0xc0},
		Action: Action{Type: ActionDrop, Class: 2}}); err != nil {
		t.Fatal(err)
	}
	lookupClass := func() int {
		t.Helper()
		act, matched := tbl.Lookup([]byte{0x55})
		if !matched {
			t.Fatal("ternary miss")
		}
		return act.Class
	}
	for i := 0; i < 3; i++ {
		if got := lookupClass(); got != 1 {
			t.Fatalf("tie iteration %d: class %d, want first-inserted 1", i, got)
		}
	}

	// A higher-priority entry in a different tuple (mask) must win over
	// both, regardless of insertion order.
	idC, err := tbl.Insert(Entry{Priority: 9, Value: []byte{0x50}, Mask: []byte{0xf0},
		Action: Action{Type: ActionDrop, Class: 3}})
	if err != nil {
		t.Fatal(err)
	}
	if got := lookupClass(); got != 3 {
		t.Fatalf("cross-tuple priority: class %d, want 3", got)
	}

	// Deleting the cross-tuple winner must restore the tie winner...
	if err := tbl.Delete(idC); err != nil {
		t.Fatal(err)
	}
	if got := lookupClass(); got != 1 {
		t.Fatalf("after delete of high-priority entry: class %d, want 1", got)
	}
	// ...and deleting the tie winner must promote the second entry.
	if err := tbl.Delete(idA); err != nil {
		t.Fatal(err)
	}
	if got := lookupClass(); got != 2 {
		t.Fatalf("after delete of tie winner: class %d, want 2", got)
	}

	// Churn: reinsert the deleted pair in reverse order; insertion order
	// (not ID order) decides ties after every rebuild.
	if _, err := tbl.Insert(Entry{Priority: 9, Value: []byte{0x50}, Mask: []byte{0xf0},
		Action: Action{Type: ActionDrop, Class: 3}}); err != nil {
		t.Fatal(err)
	}
	if _, err := tbl.Insert(Entry{Priority: 5, Value: []byte{0x40}, Mask: []byte{0xc0},
		Action: Action{Type: ActionDrop, Class: 1}}); err != nil {
		t.Fatal(err)
	}
	if got := lookupClass(); got != 3 {
		t.Fatalf("after churn: class %d, want 3", got)
	}
}

// TestRangeIndexMatchesScanUnderChurn: the compiled range index must make
// the same decision as the reference linear scan across random
// insert/delete churn.
func TestRangeIndexMatchesScanUnderChurn(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	specs := []FieldSpec{{Name: "b0", Offset: 0, Width: 1}, {Name: "b2", Offset: 2, Width: 1}}
	tbl := NewTable("det", MatchRange, specs, 0, Action{Type: ActionNop})

	type row struct {
		id       uint64
		prio     int
		lo, hi   []byte
		class    int
		inserted int
	}
	var live []row
	seq := 0
	for step := 0; step < 60; step++ {
		if len(live) > 0 && rng.Float64() < 0.3 {
			i := rng.Intn(len(live))
			if err := tbl.Delete(live[i].id); err != nil {
				t.Fatal(err)
			}
			live = append(live[:i], live[i+1:]...)
		} else {
			lo := []byte{byte(rng.Intn(200)), byte(rng.Intn(200))}
			hi := []byte{lo[0] + byte(rng.Intn(56)), lo[1] + byte(rng.Intn(56))}
			r := row{prio: rng.Intn(5), lo: lo, hi: hi, class: seq, inserted: seq}
			seq++
			id, err := tbl.Insert(Entry{Priority: r.prio, Lo: lo, Hi: hi,
				Action: Action{Type: ActionDrop, Class: r.class}})
			if err != nil {
				t.Fatal(err)
			}
			r.id = id
			live = append(live, r)
		}

		// Reference: stable sort by descending priority (insertion order
		// breaks ties), first match wins.
		ref := func(key []byte) (int, bool) {
			bestPrio, bestIns, bestClass, found := 0, 0, 0, false
			for _, r := range live {
				if key[0] < r.lo[0] || key[0] > r.hi[0] || key[1] < r.lo[1] || key[1] > r.hi[1] {
					continue
				}
				if !found || r.prio > bestPrio || (r.prio == bestPrio && r.inserted < bestIns) {
					bestPrio, bestIns, bestClass, found = r.prio, r.inserted, r.class, true
				}
			}
			return bestClass, found
		}
		for trial := 0; trial < 40; trial++ {
			frame := []byte{byte(rng.Intn(256)), 0, byte(rng.Intn(256))}
			wantClass, wantHit := ref([]byte{frame[0], frame[2]})
			act, hit := tbl.Lookup(frame)
			if hit != wantHit || (hit && act.Class != wantClass) {
				t.Fatalf("step %d: lookup (%d,%v) != reference (%d,%v) for frame %v",
					step, act.Class, hit, wantClass, wantHit, frame)
			}
		}
	}
}

// TestTableProgramReplacesAtomically: Program swaps key layout, default
// action, and entries in one step and validates before mutating.
func TestTableProgramReplacesAtomically(t *testing.T) {
	tbl := NewTable("det", MatchRange, key1(), 2, Action{Type: ActionDigest})
	if _, err := tbl.Insert(Entry{Lo: []byte{0}, Hi: []byte{10}, Action: Action{Type: ActionDrop}}); err != nil {
		t.Fatal(err)
	}
	newKey := []FieldSpec{{Name: "b1", Offset: 1, Width: 1}}
	err := tbl.Program(newKey, Action{Type: ActionAllow}, []Entry{
		{Priority: 1, Lo: []byte{100}, Hi: []byte{200}, Action: Action{Type: ActionDrop, Class: 1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if act, matched := tbl.Lookup([]byte{0, 150}); !matched || act.Type != ActionDrop {
		t.Fatalf("programmed entry missed: %+v %v", act, matched)
	}
	if act, matched := tbl.Lookup([]byte{0, 50}); matched || act.Type != ActionAllow {
		t.Fatalf("default after Program: %+v %v", act, matched)
	}

	// A bad batch must leave the table untouched.
	if err := tbl.Program(key1(), Action{Type: ActionDigest}, []Entry{
		{Lo: []byte{5, 5}, Hi: []byte{6, 6}, Action: Action{Type: ActionDrop}},
	}); err == nil {
		t.Fatal("Program accepted entries wider than the key")
	}
	if act, matched := tbl.Lookup([]byte{0, 150}); !matched || act.Type != ActionDrop {
		t.Fatalf("failed Program corrupted table: %+v %v", act, matched)
	}
	// MaxEntries still enforced.
	if err := tbl.Program(key1(), Action{Type: ActionAllow}, make([]Entry, 3)); err == nil {
		t.Fatal("Program accepted more than MaxEntries rows")
	}
}

// TestEntryDirectCounters checks the P4-style per-entry packets/bytes
// direct counters: they track matched frames only, survive reindexing
// from later Inserts, and surface through EntrySnapshots and Stats.
func TestEntryDirectCounters(t *testing.T) {
	tbl := NewTable("det", MatchRange, key1(), 0, Action{Type: ActionNop})
	id, err := tbl.Insert(Entry{
		Priority: 1, Lo: []byte{10}, Hi: []byte{20},
		Action: Action{Type: ActionDrop, Class: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	frames := [][]byte{{15, 1, 2}, {12}, {99}} // two hits (3B + 1B), one miss
	for _, f := range frames {
		tbl.Lookup(f)
	}
	// A later Insert rebuilds the lookup state; counters must persist.
	if _, err := tbl.Insert(Entry{Priority: 0, Lo: []byte{40}, Hi: []byte{50}, Action: Action{Type: ActionAllow}}); err != nil {
		t.Fatal(err)
	}
	tbl.Lookup([]byte{18, 9}) // third hit, 2 bytes

	snaps := tbl.EntrySnapshots()
	if len(snaps) != 2 {
		t.Fatalf("snapshots = %d entries, want 2", len(snaps))
	}
	var got *EntryCounters
	for i := range snaps {
		if snaps[i].ID == id {
			got = &snaps[i]
		}
	}
	if got == nil {
		t.Fatalf("entry %d missing from snapshots %+v", id, snaps)
	}
	if got.Hits != 3 || got.Bytes != 6 {
		t.Fatalf("entry counters hits=%d bytes=%d, want 3/6", got.Hits, got.Bytes)
	}
	if got.Action.Type != ActionDrop || got.Action.Class != 2 || got.Priority != 1 {
		t.Fatalf("snapshot identity %+v", got)
	}
	st := tbl.Stats()
	if st.Hits != 3 || st.Misses != 1 || st.HitBytes != 6 {
		t.Fatalf("table stats %+v, want hits=3 misses=1 hitbytes=6", st)
	}
}

// TestDigestQueueAccounting checks the drained-vs-dropped bookkeeping:
// queued == drained + depth at every step, and overflow loss is counted
// instead of silent.
func TestDigestQueueAccounting(t *testing.T) {
	p := NewPipeline(2)
	tbl := NewTable("d", MatchExact, key1(), 0, Action{Type: ActionDigest})
	if err := p.AddTable(tbl); err != nil {
		t.Fatal(err)
	}
	check := func(depth int, queued, drained, dropped uint64) {
		t.Helper()
		qs := p.DigestQueueStats()
		if qs.Depth != depth || qs.Queued != queued || qs.Drained != drained || qs.Dropped != dropped {
			t.Fatalf("queue stats %+v, want depth=%d queued=%d drained=%d dropped=%d",
				qs, depth, queued, drained, dropped)
		}
		if qs.Queued != qs.Drained+uint64(qs.Depth) {
			t.Fatalf("accounting broken: %+v", qs)
		}
		if qs.Capacity != 2 {
			t.Fatalf("capacity = %d, want 2", qs.Capacity)
		}
	}
	check(0, 0, 0, 0)
	for i := 0; i < 5; i++ {
		p.Process(&packet.Packet{Bytes: []byte{byte(i)}})
	}
	check(2, 2, 0, 3)
	if got := len(p.DrainDigests(1)); got != 1 {
		t.Fatalf("drained %d, want 1", got)
	}
	check(1, 2, 1, 3)
	p.Process(&packet.Packet{Bytes: []byte{7}})
	if got := len(p.DrainDigests(0)); got != 2 {
		t.Fatalf("drained %d, want 2", got)
	}
	check(0, 3, 3, 3)
}
