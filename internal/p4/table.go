package p4

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"p4guard/internal/match"
)

// Entry is one table row. Which match fields are meaningful depends on the
// table's kind:
//
//   - exact:   Value only (full key width)
//   - ternary: Value and Mask (full key width), Priority breaks overlaps
//   - lpm:     Value and PrefixLen (bits); longest prefix wins
//   - range:   Lo and Hi per key byte (inclusive), Priority breaks overlaps
type Entry struct {
	ID        uint64
	Priority  int
	Value     []byte
	Mask      []byte
	PrefixLen int
	Lo        []byte
	Hi        []byte
	Action    Action

	// P4-style direct counters, accessed atomically. Entry pointers are
	// shared across lookup-state generations, so the counters survive
	// reindexing (though not a full Program, which allocates new entries).
	hits  uint64
	bytes uint64
}

// Table is one match–action table. Mutations (insert/delete/program) are
// serialized by mu and publish an immutable lookupState snapshot; the
// lookup hot path reads the snapshot through one atomic load and touches
// no lock at all. Hit/miss counters are atomics shared across snapshots.
type Table struct {
	Name          string
	Kind          MatchKind
	Key           []FieldSpec
	MaxEntries    int
	DefaultAction Action

	mu      sync.Mutex // serializes mutation; never taken by Lookup
	nextID  uint64
	entries []*Entry // source of truth; replaced (never mutated) on change
	state   atomic.Pointer[lookupState]
	hits    uint64 // accessed atomically
	misses  uint64 // accessed atomically
}

// lookupState is one immutable generation of the table's lookup index.
// Every mutation builds a fresh state (entry slice included, since
// reindexing sorts), so concurrent lookups on an old generation never
// observe a partial update. Entry pointers are shared across generations,
// keeping per-entry hit counters stable over reprogramming.
type lookupState struct {
	kind     MatchKind
	key      []FieldSpec
	width    int
	def      Action
	entries  []*Entry
	exact    map[string]*Entry
	tuples   []*tupleGroup   // ternary tuple-space-search index
	rangeIdx *match.KeyIndex // compiled range-match index (row i = entries[i])
	// lpmMasks[i] is entries[i].PrefixLen expanded to a byte mask, so the
	// batched fast path can test prefixes with 64-bit lane compares
	// (match.MaskedEqual) instead of the bit-fiddling prefixMatch loop.
	lpmMasks [][]byte
}

// tupleGroup indexes all ternary entries sharing one mask: a hash lookup
// of key&mask replaces a linear scan, the classic tuple-space-search
// optimization software switches use to emulate TCAM lookup.
type tupleGroup struct {
	mask   []byte
	byValu map[string]*Entry // masked value -> highest-priority entry
}

// NewTable constructs an empty table. MaxEntries <= 0 means unlimited.
func NewTable(name string, kind MatchKind, key []FieldSpec, maxEntries int, def Action) *Table {
	t := &Table{
		Name: name, Kind: kind, Key: key, MaxEntries: maxEntries,
		DefaultAction: def,
	}
	t.reindex()
	return t
}

// width returns the key width in bytes.
func (t *Table) width() int { return KeyWidth(t.Key) }

// validate checks an entry against the table's kind and key width.
func (t *Table) validate(e *Entry, w int) error {
	switch t.Kind {
	case MatchExact:
		if len(e.Value) != w {
			return fmt.Errorf("exact value width %d != key %d: %w", len(e.Value), w, ErrBadEntry)
		}
	case MatchTernary:
		if len(e.Value) != w || len(e.Mask) != w {
			return fmt.Errorf("ternary value/mask widths %d/%d != key %d: %w",
				len(e.Value), len(e.Mask), w, ErrBadEntry)
		}
		for i := range e.Value {
			if e.Value[i]&^e.Mask[i] != 0 {
				return fmt.Errorf("ternary value bit outside mask at byte %d: %w", i, ErrBadEntry)
			}
		}
	case MatchLPM:
		if len(e.Value) != w {
			return fmt.Errorf("lpm value width %d != key %d: %w", len(e.Value), w, ErrBadEntry)
		}
		if e.PrefixLen < 0 || e.PrefixLen > w*8 {
			return fmt.Errorf("lpm prefix length %d out of [0,%d]: %w", e.PrefixLen, w*8, ErrBadEntry)
		}
	case MatchRange:
		if len(e.Lo) != w || len(e.Hi) != w {
			return fmt.Errorf("range lo/hi widths %d/%d != key %d: %w", len(e.Lo), len(e.Hi), w, ErrBadEntry)
		}
		for i := range e.Lo {
			if e.Lo[i] > e.Hi[i] {
				return fmt.Errorf("range lo>hi at byte %d: %w", i, ErrBadEntry)
			}
		}
	default:
		return fmt.Errorf("unknown match kind %v: %w", t.Kind, ErrBadEntry)
	}
	return nil
}

// Insert adds an entry and returns its assigned ID.
func (t *Table) Insert(e Entry) (uint64, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if err := t.validate(&e, t.width()); err != nil {
		return 0, fmt.Errorf("table %s: %w", t.Name, err)
	}
	if t.MaxEntries > 0 && len(t.entries) >= t.MaxEntries {
		return 0, fmt.Errorf("table %s (%d entries): %w", t.Name, len(t.entries), ErrTableFull)
	}
	t.nextID++
	e.ID = t.nextID
	stored := e
	next := make([]*Entry, len(t.entries)+1)
	copy(next, t.entries)
	next[len(t.entries)] = &stored
	t.entries = next
	t.reindex()
	return stored.ID, nil
}

// Program atomically replaces the table's key layout, default action, and
// entry list, rebuilding the lookup index once. It is the race-safe (and
// O(n log n) instead of per-insert) way to reprogram a live table.
func (t *Table) Program(key []FieldSpec, def Action, entries []Entry) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	w := KeyWidth(key)
	savedKey, savedDef := t.Key, t.DefaultAction
	t.Key, t.DefaultAction = key, def
	if t.MaxEntries > 0 && len(entries) > t.MaxEntries {
		t.Key, t.DefaultAction = savedKey, savedDef
		return fmt.Errorf("table %s (%d entries): %w", t.Name, len(entries), ErrTableFull)
	}
	for i := range entries {
		if err := t.validate(&entries[i], w); err != nil {
			t.Key, t.DefaultAction = savedKey, savedDef
			return fmt.Errorf("table %s: entry %d: %w", t.Name, i, err)
		}
	}
	t.entries = make([]*Entry, len(entries))
	for i := range entries {
		e := entries[i]
		t.nextID++
		e.ID = t.nextID
		t.entries[i] = &e
	}
	t.reindex()
	return nil
}

// reindex sorts the (freshly copied) entry slice for the table's kind,
// rebuilds the lookup index, and publishes the new state. Callers must
// hold t.mu and must have replaced t.entries with a new slice (the
// previous generation's slice is still being read lock-free).
func (t *Table) reindex() {
	st := &lookupState{
		kind:  t.Kind,
		key:   t.Key,
		width: t.width(),
		def:   t.DefaultAction,
	}
	switch t.Kind {
	case MatchExact:
		st.exact = make(map[string]*Entry, len(t.entries))
		// Later entries overwrite earlier duplicates, matching the
		// behaviour of sequential Inserts.
		for _, e := range t.entries {
			st.exact[string(e.Value)] = e
		}
	case MatchTernary:
		sort.SliceStable(t.entries, func(i, j int) bool {
			return t.entries[i].Priority > t.entries[j].Priority
		})
		st.tuples = buildTuples(t.entries)
	case MatchRange:
		sort.SliceStable(t.entries, func(i, j int) bool {
			return t.entries[i].Priority > t.entries[j].Priority
		})
		st.rangeIdx = buildRangeIndex(st.width, t.entries)
	case MatchLPM:
		sort.SliceStable(t.entries, func(i, j int) bool {
			return t.entries[i].PrefixLen > t.entries[j].PrefixLen
		})
		st.lpmMasks = make([][]byte, len(t.entries))
		for i, e := range t.entries {
			st.lpmMasks[i] = prefixMask(st.width, e.PrefixLen)
		}
	}
	st.entries = t.entries
	t.state.Store(st)
}

// buildTuples indexes ternary entries by mask. Entries are already
// sorted by descending priority, so the first entry seen for a
// (mask,value) pair is the winner (matching first-match-wins semantics on
// priority ties).
func buildTuples(entries []*Entry) []*tupleGroup {
	byMask := make(map[string]*tupleGroup)
	var tuples []*tupleGroup
	for _, e := range entries {
		g := byMask[string(e.Mask)]
		if g == nil {
			g = &tupleGroup{mask: e.Mask, byValu: make(map[string]*Entry)}
			byMask[string(e.Mask)] = g
			tuples = append(tuples, g)
		}
		if _, dup := g.byValu[string(e.Value)]; !dup {
			g.byValu[string(e.Value)] = e
		}
	}
	return tuples
}

// buildRangeIndex compiles the priority-sorted range entries into the
// shared bitset index from internal/match — the same engine the offline
// rule set classifies with, so table lookups and rule-set classification
// cannot drift apart.
func buildRangeIndex(width int, entries []*Entry) *match.KeyIndex {
	if len(entries) == 0 {
		return nil
	}
	rows := make([]match.RangeRow, len(entries))
	for i, e := range entries {
		rows[i] = match.RangeRow{Lo: e.Lo, Hi: e.Hi}
	}
	idx, err := match.CompileRanges(width, rows)
	if err != nil {
		// Entries inconsistent with the current key layout (reprogrammed
		// underneath): fall back to the linear scan, which degrades to a
		// miss per entry instead of a wrong hit.
		return nil
	}
	return idx
}

// Delete removes the entry with the given ID.
func (t *Table) Delete(id uint64) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	for i, e := range t.entries {
		if e.ID == id {
			next := make([]*Entry, 0, len(t.entries)-1)
			next = append(next, t.entries[:i]...)
			next = append(next, t.entries[i+1:]...)
			t.entries = next
			t.reindex()
			return nil
		}
	}
	return fmt.Errorf("table %s: entry %d: %w", t.Name, id, ErrBadEntry)
}

// Clear removes every entry.
func (t *Table) Clear() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.entries = nil
	t.reindex()
}

// Len returns the entry count.
func (t *Table) Len() int {
	return len(t.state.Load().entries)
}

// Entries returns a deep copy of the installed entries in the current
// lookup generation's (priority-sorted) order, counters excluded. The
// control plane uses it to prove two tables converged to the same state
// byte for byte (reconciliation tests, audit dumps); mutating the copies
// never touches the live table.
func (t *Table) Entries() []Entry {
	st := t.state.Load()
	out := make([]Entry, len(st.entries))
	for i, e := range st.entries {
		out[i] = Entry{
			ID:        e.ID,
			Priority:  e.Priority,
			Value:     append([]byte(nil), e.Value...),
			Mask:      append([]byte(nil), e.Mask...),
			PrefixLen: e.PrefixLen,
			Lo:        append([]byte(nil), e.Lo...),
			Hi:        append([]byte(nil), e.Hi...),
			Action:    e.Action,
		}
	}
	return out
}

// Lookup matches the frame against the table and returns the action.
// matched reports whether an entry (vs the default action) fired. The
// hot path is lock-free — one atomic load of the current index
// generation — and allocates nothing for key widths up to 64 bytes, so
// concurrent lookups scale linearly with cores.
func (t *Table) Lookup(frame []byte) (act Action, matched bool) {
	st := t.state.Load()
	var kb [64]byte
	var key []byte
	if st.width <= len(kb) {
		key = appendKey(kb[:0], frame, st.key)
	} else {
		key = appendKey(make([]byte, 0, st.width), frame, st.key)
	}
	var hit *Entry
	switch st.kind {
	case MatchExact:
		hit = st.exact[string(key)]
	case MatchTernary:
		// Tuple-space search: one hash probe per distinct mask instead of
		// a scan over every entry.
		var mb [64]byte
		var masked []byte
		if len(key) <= len(mb) {
			masked = mb[:len(key)]
		} else {
			masked = make([]byte, len(key))
		}
		for _, g := range st.tuples {
			for i, m := range g.mask {
				masked[i] = key[i] & m
			}
			e, ok := g.byValu[string(masked)]
			if !ok {
				continue
			}
			if hit == nil || e.Priority > hit.Priority {
				hit = e
			}
		}
	case MatchLPM:
		for _, e := range st.entries {
			if prefixMatch(key, e.Value, e.PrefixLen) {
				hit = e
				break
			}
		}
	case MatchRange:
		if st.rangeIdx != nil {
			if row, ok := st.rangeIdx.Find(key); ok {
				hit = st.entries[row]
			}
		} else {
			for _, e := range st.entries {
				if rangeMatch(key, e.Lo, e.Hi) {
					hit = e
					break
				}
			}
		}
	}
	if hit == nil {
		atomic.AddUint64(&t.misses, 1)
		return st.def, false
	}
	// Direct counters: hits and bytes share the entry's cache line, so the
	// second add is nearly free once the first has claimed the line.
	atomic.AddUint64(&hit.hits, 1)
	atomic.AddUint64(&hit.bytes, uint64(len(frame)))
	atomic.AddUint64(&t.hits, 1)
	return hit.Action, true
}

// prefixMask expands a prefix length in bits to a width-byte mask.
func prefixMask(width, prefixLen int) []byte {
	m := make([]byte, width)
	full := prefixLen / 8
	for i := 0; i < full && i < width; i++ {
		m[i] = 0xff
	}
	if rem := prefixLen % 8; rem > 0 && full < width {
		m[full] = byte(0xff << (8 - rem))
	}
	return m
}

func prefixMatch(key, value []byte, prefixLen int) bool {
	full := prefixLen / 8
	for i := 0; i < full; i++ {
		if key[i] != value[i] {
			return false
		}
	}
	if rem := prefixLen % 8; rem > 0 {
		mask := byte(0xff << (8 - rem))
		if key[full]&mask != value[full]&mask {
			return false
		}
	}
	return true
}

func rangeMatch(key, lo, hi []byte) bool {
	for i := range key {
		if key[i] < lo[i] || key[i] > hi[i] {
			return false
		}
	}
	return true
}

// Stats reports table hit/miss counters. HitBytes totals the frame bytes
// of matched packets (missed packets are not byte-counted).
type Stats struct {
	Name     string `json:"name"`
	Entries  int    `json:"entries"`
	Hits     uint64 `json:"hits"`
	Misses   uint64 `json:"misses"`
	HitBytes uint64 `json:"hit_bytes"`
}

// Stats returns a snapshot of the table's counters.
func (t *Table) Stats() Stats {
	s := Stats{
		Name:    t.Name,
		Entries: len(t.state.Load().entries),
		Hits:    atomic.LoadUint64(&t.hits),
		Misses:  atomic.LoadUint64(&t.misses),
	}
	for _, e := range t.state.Load().entries {
		s.HitBytes += atomic.LoadUint64(&e.bytes)
	}
	return s
}

// EntryCounters is a snapshot of one entry's identity and direct
// counters, the P4 `direct_counter(packets_and_bytes)` equivalent.
type EntryCounters struct {
	ID       uint64
	Priority int
	Action   Action
	Hits     uint64
	Bytes    uint64
}

// EntrySnapshots returns a counter snapshot for every installed entry in
// current match order. It reads the lock-free lookup state, so it is safe
// to call at scrape time under full forwarding load.
func (t *Table) EntrySnapshots() []EntryCounters {
	entries := t.state.Load().entries
	out := make([]EntryCounters, len(entries))
	for i, e := range entries {
		out[i] = EntryCounters{
			ID:       e.ID,
			Priority: e.Priority,
			Action:   e.Action,
			Hits:     atomic.LoadUint64(&e.hits),
			Bytes:    atomic.LoadUint64(&e.bytes),
		}
	}
	return out
}

// EntryHits returns the hit counter for one entry.
func (t *Table) EntryHits(id uint64) (uint64, error) {
	for _, e := range t.state.Load().entries {
		if e.ID == id {
			return atomic.LoadUint64(&e.hits), nil
		}
	}
	return 0, fmt.Errorf("table %s: entry %d: %w", t.Name, id, ErrBadEntry)
}
