package p4

import (
	"fmt"
	"sort"
	"sync"
)

// Entry is one table row. Which match fields are meaningful depends on the
// table's kind:
//
//   - exact:   Value only (full key width)
//   - ternary: Value and Mask (full key width), Priority breaks overlaps
//   - lpm:     Value and PrefixLen (bits); longest prefix wins
//   - range:   Lo and Hi per key byte (inclusive), Priority breaks overlaps
type Entry struct {
	ID        uint64
	Priority  int
	Value     []byte
	Mask      []byte
	PrefixLen int
	Lo        []byte
	Hi        []byte
	Action    Action

	hits uint64
}

// Table is one match–action table.
type Table struct {
	Name          string
	Kind          MatchKind
	Key           []FieldSpec
	MaxEntries    int
	DefaultAction Action

	mu      sync.RWMutex
	nextID  uint64
	entries []*Entry
	exact   map[string]*Entry
	tuples  []*tupleGroup // ternary tuple-space-search index
	hits    uint64
	misses  uint64
}

// tupleGroup indexes all ternary entries sharing one mask: a hash lookup
// of key&mask replaces a linear scan, the classic tuple-space-search
// optimization software switches use to emulate TCAM lookup.
type tupleGroup struct {
	mask   []byte
	byValu map[string]*Entry // masked value -> highest-priority entry
}

// NewTable constructs an empty table. MaxEntries <= 0 means unlimited.
func NewTable(name string, kind MatchKind, key []FieldSpec, maxEntries int, def Action) *Table {
	return &Table{
		Name: name, Kind: kind, Key: key, MaxEntries: maxEntries,
		DefaultAction: def,
		exact:         make(map[string]*Entry),
	}
}

// width returns the key width in bytes.
func (t *Table) width() int { return KeyWidth(t.Key) }

// validate checks an entry against the table's kind and key width.
func (t *Table) validate(e *Entry) error {
	w := t.width()
	switch t.Kind {
	case MatchExact:
		if len(e.Value) != w {
			return fmt.Errorf("exact value width %d != key %d: %w", len(e.Value), w, ErrBadEntry)
		}
	case MatchTernary:
		if len(e.Value) != w || len(e.Mask) != w {
			return fmt.Errorf("ternary value/mask widths %d/%d != key %d: %w",
				len(e.Value), len(e.Mask), w, ErrBadEntry)
		}
		for i := range e.Value {
			if e.Value[i]&^e.Mask[i] != 0 {
				return fmt.Errorf("ternary value bit outside mask at byte %d: %w", i, ErrBadEntry)
			}
		}
	case MatchLPM:
		if len(e.Value) != w {
			return fmt.Errorf("lpm value width %d != key %d: %w", len(e.Value), w, ErrBadEntry)
		}
		if e.PrefixLen < 0 || e.PrefixLen > w*8 {
			return fmt.Errorf("lpm prefix length %d out of [0,%d]: %w", e.PrefixLen, w*8, ErrBadEntry)
		}
	case MatchRange:
		if len(e.Lo) != w || len(e.Hi) != w {
			return fmt.Errorf("range lo/hi widths %d/%d != key %d: %w", len(e.Lo), len(e.Hi), w, ErrBadEntry)
		}
		for i := range e.Lo {
			if e.Lo[i] > e.Hi[i] {
				return fmt.Errorf("range lo>hi at byte %d: %w", i, ErrBadEntry)
			}
		}
	default:
		return fmt.Errorf("unknown match kind %v: %w", t.Kind, ErrBadEntry)
	}
	return nil
}

// Insert adds an entry and returns its assigned ID.
func (t *Table) Insert(e Entry) (uint64, error) {
	if err := t.validate(&e); err != nil {
		return 0, fmt.Errorf("table %s: %w", t.Name, err)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.MaxEntries > 0 && len(t.entries) >= t.MaxEntries {
		return 0, fmt.Errorf("table %s (%d entries): %w", t.Name, len(t.entries), ErrTableFull)
	}
	t.nextID++
	e.ID = t.nextID
	stored := e
	t.entries = append(t.entries, &stored)
	switch t.Kind {
	case MatchExact:
		t.exact[string(e.Value)] = &stored
	case MatchTernary:
		sort.SliceStable(t.entries, func(i, j int) bool {
			return t.entries[i].Priority > t.entries[j].Priority
		})
		t.rebuildTuples()
	case MatchRange:
		sort.SliceStable(t.entries, func(i, j int) bool {
			return t.entries[i].Priority > t.entries[j].Priority
		})
	case MatchLPM:
		sort.SliceStable(t.entries, func(i, j int) bool {
			return t.entries[i].PrefixLen > t.entries[j].PrefixLen
		})
	}
	return stored.ID, nil
}

// rebuildTuples reindexes ternary entries by mask. Entries are already
// sorted by descending priority, so the first entry seen for a
// (mask,value) pair is the winner (matching first-match-wins semantics on
// priority ties).
func (t *Table) rebuildTuples() {
	byMask := make(map[string]*tupleGroup)
	t.tuples = t.tuples[:0]
	for _, e := range t.entries {
		g := byMask[string(e.Mask)]
		if g == nil {
			g = &tupleGroup{mask: e.Mask, byValu: make(map[string]*Entry)}
			byMask[string(e.Mask)] = g
			t.tuples = append(t.tuples, g)
		}
		if _, dup := g.byValu[string(e.Value)]; !dup {
			g.byValu[string(e.Value)] = e
		}
	}
}

// Delete removes the entry with the given ID.
func (t *Table) Delete(id uint64) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	for i, e := range t.entries {
		if e.ID == id {
			t.entries = append(t.entries[:i], t.entries[i+1:]...)
			switch t.Kind {
			case MatchExact:
				delete(t.exact, string(e.Value))
			case MatchTernary:
				t.rebuildTuples()
			}
			return nil
		}
	}
	return fmt.Errorf("table %s: entry %d: %w", t.Name, id, ErrBadEntry)
}

// Clear removes every entry.
func (t *Table) Clear() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.entries = nil
	t.exact = make(map[string]*Entry)
	t.tuples = nil
}

// Len returns the entry count.
func (t *Table) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.entries)
}

// Lookup matches the frame against the table and returns the action.
// matched reports whether an entry (vs the default action) fired.
func (t *Table) Lookup(frame []byte) (act Action, matched bool) {
	key := ExtractKey(frame, t.Key)
	t.mu.Lock()
	defer t.mu.Unlock()
	var hit *Entry
	switch t.Kind {
	case MatchExact:
		hit = t.exact[string(key)]
	case MatchTernary:
		// Tuple-space search: one hash probe per distinct mask instead of
		// a scan over every entry.
		masked := make([]byte, len(key))
		for _, g := range t.tuples {
			for i, m := range g.mask {
				masked[i] = key[i] & m
			}
			e, ok := g.byValu[string(masked)]
			if !ok {
				continue
			}
			if hit == nil || e.Priority > hit.Priority {
				hit = e
			}
		}
	case MatchLPM:
		for _, e := range t.entries {
			if prefixMatch(key, e.Value, e.PrefixLen) {
				hit = e
				break
			}
		}
	case MatchRange:
		for _, e := range t.entries {
			if rangeMatch(key, e.Lo, e.Hi) {
				hit = e
				break
			}
		}
	}
	if hit == nil {
		t.misses++
		return t.DefaultAction, false
	}
	hit.hits++
	t.hits++
	return hit.Action, true
}

func prefixMatch(key, value []byte, prefixLen int) bool {
	full := prefixLen / 8
	for i := 0; i < full; i++ {
		if key[i] != value[i] {
			return false
		}
	}
	if rem := prefixLen % 8; rem > 0 {
		mask := byte(0xff << (8 - rem))
		if key[full]&mask != value[full]&mask {
			return false
		}
	}
	return true
}

func rangeMatch(key, lo, hi []byte) bool {
	for i := range key {
		if key[i] < lo[i] || key[i] > hi[i] {
			return false
		}
	}
	return true
}

// Stats reports table hit/miss counters.
type Stats struct {
	Name    string
	Entries int
	Hits    uint64
	Misses  uint64
}

// Stats returns a snapshot of the table's counters.
func (t *Table) Stats() Stats {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return Stats{Name: t.Name, Entries: len(t.entries), Hits: t.hits, Misses: t.misses}
}

// EntryHits returns the hit counter for one entry.
func (t *Table) EntryHits(id uint64) (uint64, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	for _, e := range t.entries {
		if e.ID == id {
			return e.hits, nil
		}
	}
	return 0, fmt.Errorf("table %s: entry %d: %w", t.Name, id, ErrBadEntry)
}
