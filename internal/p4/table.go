package p4

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"p4guard/internal/match"
)

// Entry is one table row. Which match fields are meaningful depends on the
// table's kind:
//
//   - exact:   Value only (full key width)
//   - ternary: Value and Mask (full key width), Priority breaks overlaps
//   - lpm:     Value and PrefixLen (bits); longest prefix wins
//   - range:   Lo and Hi per key byte (inclusive), Priority breaks overlaps
type Entry struct {
	ID uint64
	// ord is the entry's immutable canonical-order key: priority ties
	// resolve by ascending ord, reproducing wire/insertion order through
	// per-entry data the lock-free index can read on any generation.
	// Replace assigns gapped wire-order ords, Apply bisects the gaps for
	// newcomers, and reactive Inserts order in a band above every
	// programmed ord.
	ord       uint64
	Priority  int
	Value     []byte
	Mask      []byte
	PrefixLen int
	Lo        []byte
	Hi        []byte
	Action    Action

	// P4-style direct counters, accessed atomically. Entry pointers are
	// shared across lookup-state generations, so the counters survive
	// reindexing and delta application (though not a full Replace, which
	// allocates new entries).
	hits  uint64
	bytes uint64
}

// Table is one match–action table. Mutations (insert/delete/define/
// replace/apply) are serialized by mu and publish an immutable
// lookupState snapshot; the lookup hot path reads the snapshot through
// one atomic load and touches no lock at all. Hit/miss counters are
// atomics shared across snapshots.
//
// Entries live in two pools: prog is the canonical programmed list in
// wire order (what Replace installed, edited in place by Apply), and
// inserted holds reactive single-entry Inserts. Deltas address prog by
// canonical index and never disturb inserted, so reactive state
// survives an incremental reprogram that would be wiped by a full
// Replace.
type Table struct {
	Name          string
	Kind          MatchKind
	Key           []FieldSpec
	MaxEntries    int
	DefaultAction Action

	mu       sync.Mutex // serializes mutation; never taken by Lookup
	nextID   uint64
	prog     []*Entry // canonical programmed entries, wire order
	progHash uint64   // order-independent signature of prog (see HashEntry)
	inserted []*Entry // reactive Inserts, chronological
	state    atomic.Pointer[lookupState]
	hits     uint64 // accessed atomically
	misses   uint64 // accessed atomically
}

// lookupState is one immutable generation of the table's lookup index.
// Every mutation builds a fresh state (entry slice included, since
// reindexing sorts), so concurrent lookups on an old generation never
// observe a partial update. Entry pointers are shared across generations,
// keeping per-entry hit counters stable over reprogramming.
type lookupState struct {
	kind     MatchKind
	key      []FieldSpec
	width    int
	def      Action
	entries  []*Entry
	exact    map[string]*Entry
	tstore   *ternaryStore   // partitioned hash-indexed ternary index
	rangeIdx *match.KeyIndex // compiled range-match index (row i = entries[i])
	// lpmMasks[i] is entries[i].PrefixLen expanded to a byte mask, so the
	// batched fast path can test prefixes with 64-bit lane compares
	// (match.MaskedEqual) instead of the bit-fiddling prefixMatch loop.
	lpmMasks [][]byte
}

// NewTable constructs an empty table. MaxEntries <= 0 means unlimited.
func NewTable(name string, kind MatchKind, key []FieldSpec, maxEntries int, def Action) *Table {
	t := &Table{
		Name: name, Kind: kind, Key: key, MaxEntries: maxEntries,
		DefaultAction: def,
	}
	t.reindex()
	return t
}

// width returns the key width in bytes.
func (t *Table) width() int { return KeyWidth(t.Key) }

// validate checks an entry against the table's kind and key width.
func (t *Table) validate(e *Entry, w int) error {
	switch t.Kind {
	case MatchExact:
		if len(e.Value) != w {
			return fmt.Errorf("exact value width %d != key %d: %w", len(e.Value), w, ErrBadEntry)
		}
	case MatchTernary:
		if len(e.Value) != w || len(e.Mask) != w {
			return fmt.Errorf("ternary value/mask widths %d/%d != key %d: %w",
				len(e.Value), len(e.Mask), w, ErrBadEntry)
		}
		for i := range e.Value {
			if e.Value[i]&^e.Mask[i] != 0 {
				return fmt.Errorf("ternary value bit outside mask at byte %d: %w", i, ErrBadEntry)
			}
		}
	case MatchLPM:
		if len(e.Value) != w {
			return fmt.Errorf("lpm value width %d != key %d: %w", len(e.Value), w, ErrBadEntry)
		}
		if e.PrefixLen < 0 || e.PrefixLen > w*8 {
			return fmt.Errorf("lpm prefix length %d out of [0,%d]: %w", e.PrefixLen, w*8, ErrBadEntry)
		}
	case MatchRange:
		if len(e.Lo) != w || len(e.Hi) != w {
			return fmt.Errorf("range lo/hi widths %d/%d != key %d: %w", len(e.Lo), len(e.Hi), w, ErrBadEntry)
		}
		for i := range e.Lo {
			if e.Lo[i] > e.Hi[i] {
				return fmt.Errorf("range lo>hi at byte %d: %w", i, ErrBadEntry)
			}
		}
	default:
		return fmt.Errorf("unknown match kind %v: %w", t.Kind, ErrBadEntry)
	}
	return nil
}

// entryCount returns prog+inserted size; callers hold t.mu.
func (t *Table) entryCount() int { return len(t.prog) + len(t.inserted) }

// Canonical-order bands: programmed entries get gapped wire-order ords
// (progOrdStride apart; Apply bisects the gaps for newcomers), and
// reactive Inserts order above every possible programmed ord — keeping
// the historical "programmed before inserted" resolution of priority
// ties.
const (
	progOrdStride   = uint64(1) << 32
	insertedOrdBase = uint64(1) << 56
)

// Insert adds a reactive entry and returns its assigned ID. Inserted
// entries live outside the canonical program: they survive Apply deltas
// and are dropped by Replace/Program full swaps.
func (t *Table) Insert(e Entry) (uint64, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if err := t.validate(&e, t.width()); err != nil {
		return 0, fmt.Errorf("table %s: %w", t.Name, err)
	}
	if t.MaxEntries > 0 && t.entryCount() >= t.MaxEntries {
		return 0, fmt.Errorf("table %s (%d entries): %w", t.Name, t.entryCount(), ErrTableFull)
	}
	t.nextID++
	e.ID = t.nextID
	e.ord = insertedOrdBase + e.ID // IDs are monotonic: insertion order
	stored := e
	t.inserted = append(t.inserted, &stored)
	t.reindex()
	return stored.ID, nil
}

// Define sets the table's schema: key layout and default action. When
// the new layout extracts the same key bytes as the current one, the
// installed entries are kept (so a default-action change is cheap);
// a layout change invalidates every entry and clears the table.
func (t *Table) Define(key []FieldSpec, def Action) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if !sameKeyLayout(t.Key, key) {
		t.prog, t.inserted, t.progHash = nil, nil, 0
	}
	t.Key, t.DefaultAction = key, def
	t.reindex()
	return nil
}

// KeySpecs returns a copy of the table's current key layout.
func (t *Table) KeySpecs() []FieldSpec {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]FieldSpec(nil), t.Key...)
}

// sameKeyLayout reports whether two key layouts extract identical key
// bytes (names are cosmetic; offset/width sequences decide validity).
func sameKeyLayout(a, b []FieldSpec) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Offset != b[i].Offset || a[i].Width != b[i].Width {
			return false
		}
	}
	return true
}

// Replace atomically swaps the table's full canonical entry list under
// the current schema, rebuilding the lookup index once. Reactive
// Inserts are dropped (the swap defines the table's entire contents);
// use Apply for an incremental edit that preserves them. On error the
// table is unchanged.
func (t *Table) Replace(entries []Entry) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.replaceLocked(entries)
}

func (t *Table) replaceLocked(entries []Entry) error {
	w := t.width()
	if t.MaxEntries > 0 && len(entries) > t.MaxEntries {
		return fmt.Errorf("table %s (%d entries): %w", t.Name, len(entries), ErrTableFull)
	}
	for i := range entries {
		if err := t.validate(&entries[i], w); err != nil {
			return fmt.Errorf("table %s: entry %d: %w", t.Name, i, err)
		}
	}
	t.prog = make([]*Entry, len(entries))
	t.progHash = 0
	for i := range entries {
		e := entries[i]
		t.nextID++
		e.ID = t.nextID
		e.ord = uint64(i+1) * progOrdStride
		t.prog[i] = &e
		t.progHash ^= HashEntry(&e)
	}
	t.inserted = nil
	t.reindex()
	return nil
}

// Program atomically replaces the table's key layout, default action, and
// entry list, rebuilding the lookup index once.
//
// Deprecated: Program conflates schema and contents. Use Define (schema)
// plus Replace (full swap) or Apply (incremental delta) instead.
func (t *Table) Program(key []FieldSpec, def Action, entries []Entry) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	w := KeyWidth(key)
	savedKey, savedDef := t.Key, t.DefaultAction
	t.Key, t.DefaultAction = key, def
	// Validate against the new width before touching entry state so a bad
	// program leaves the table exactly as it was.
	if t.MaxEntries > 0 && len(entries) > t.MaxEntries {
		t.Key, t.DefaultAction = savedKey, savedDef
		return fmt.Errorf("table %s (%d entries): %w", t.Name, len(entries), ErrTableFull)
	}
	for i := range entries {
		if err := t.validate(&entries[i], w); err != nil {
			t.Key, t.DefaultAction = savedKey, savedDef
			return fmt.Errorf("table %s: entry %d: %w", t.Name, i, err)
		}
	}
	if err := t.replaceLocked(entries); err != nil {
		t.Key, t.DefaultAction = savedKey, savedDef
		return err
	}
	return nil
}

// ProgramSignature identifies the canonical programmed entry list: its
// length and an order-independent hash over every entry's match fields
// (IDs and counters excluded). A Delta names the base it was computed
// against with the same pair, so Apply can refuse a delta aimed at a
// different program.
func (t *Table) ProgramSignature() (count int, hash uint64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.prog), t.progHash
}

// reindex sorts a freshly merged entry slice for the table's kind,
// rebuilds the lookup index, and publishes the new state. Callers must
// hold t.mu. The previous generation's slice is never mutated (it is
// still being read lock-free); sorting happens on the merged copy.
func (t *Table) reindex() {
	merged := make([]*Entry, 0, t.entryCount())
	merged = append(merged, t.prog...)
	merged = append(merged, t.inserted...)
	st := &lookupState{
		kind:  t.Kind,
		key:   t.Key,
		width: t.width(),
		def:   t.DefaultAction,
	}
	switch t.Kind {
	case MatchExact:
		st.exact = make(map[string]*Entry, len(merged))
		// Later entries overwrite earlier duplicates, matching the
		// behaviour of sequential Inserts.
		for _, e := range merged {
			st.exact[string(e.Value)] = e
		}
	case MatchTernary:
		sortByPriority(merged)
		st.tstore = buildTernaryStore(merged)
	case MatchRange:
		sortByPriority(merged)
		st.rangeIdx = buildRangeIndex(st.width, merged)
	case MatchLPM:
		sort.Slice(merged, func(i, j int) bool {
			if merged[i].PrefixLen != merged[j].PrefixLen {
				return merged[i].PrefixLen > merged[j].PrefixLen
			}
			return merged[i].ord < merged[j].ord
		})
		st.lpmMasks = make([][]byte, len(merged))
		for i, e := range merged {
			st.lpmMasks[i] = prefixMask(st.width, e.PrefixLen)
		}
	}
	st.entries = merged
	t.state.Store(st)
}

// sortByPriority orders entries by descending priority, breaking ties
// by ascending canonical-order key — exactly the stable wire/insertion
// order the table has always used, expressed through an immutable
// per-entry field so the ternary store can resolve ties without
// knowing an entry's slice position.
func sortByPriority(entries []*Entry) {
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].Priority != entries[j].Priority {
			return entries[i].Priority > entries[j].Priority
		}
		return entries[i].ord < entries[j].ord
	})
}

// beats reports whether entry e outranks f under the table's match
// order: higher priority first, then earlier canonical order. A nil f
// never beats.
func beats(e, f *Entry) bool {
	if f == nil {
		return true
	}
	if e.Priority != f.Priority {
		return e.Priority > f.Priority
	}
	return e.ord < f.ord
}

// buildRangeIndex compiles the priority-sorted range entries into the
// shared bitset index from internal/match — the same engine the offline
// rule set classifies with, so table lookups and rule-set classification
// cannot drift apart.
func buildRangeIndex(width int, entries []*Entry) *match.KeyIndex {
	if len(entries) == 0 {
		return nil
	}
	rows := make([]match.RangeRow, len(entries))
	for i, e := range entries {
		rows[i] = match.RangeRow{Lo: e.Lo, Hi: e.Hi}
	}
	idx, err := match.CompileRanges(width, rows)
	if err != nil {
		// Entries inconsistent with the current key layout (reprogrammed
		// underneath): fall back to the linear scan, which degrades to a
		// miss per entry instead of a wrong hit.
		return nil
	}
	return idx
}

// Delete removes the entry with the given ID (programmed or reactive).
func (t *Table) Delete(id uint64) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	for i, e := range t.prog {
		if e.ID == id {
			next := make([]*Entry, 0, len(t.prog)-1)
			next = append(next, t.prog[:i]...)
			next = append(next, t.prog[i+1:]...)
			t.prog = next
			t.progHash ^= HashEntry(e)
			t.reindex()
			return nil
		}
	}
	for i, e := range t.inserted {
		if e.ID == id {
			next := make([]*Entry, 0, len(t.inserted)-1)
			next = append(next, t.inserted[:i]...)
			next = append(next, t.inserted[i+1:]...)
			t.inserted = next
			t.reindex()
			return nil
		}
	}
	return fmt.Errorf("table %s: entry %d: %w", t.Name, id, ErrBadEntry)
}

// Clear removes every entry.
func (t *Table) Clear() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.prog, t.inserted, t.progHash = nil, nil, 0
	t.reindex()
}

// Len returns the entry count.
func (t *Table) Len() int {
	return len(t.state.Load().entries)
}

// Entries returns a deep copy of the installed entries in the current
// lookup generation's (priority-sorted) order, counters excluded. The
// control plane uses it to prove two tables converged to the same state
// byte for byte (reconciliation tests, audit dumps); mutating the copies
// never touches the live table.
func (t *Table) Entries() []Entry {
	st := t.state.Load()
	out := make([]Entry, len(st.entries))
	for i, e := range st.entries {
		out[i] = Entry{
			ID:        e.ID,
			Priority:  e.Priority,
			Value:     append([]byte(nil), e.Value...),
			Mask:      append([]byte(nil), e.Mask...),
			PrefixLen: e.PrefixLen,
			Lo:        append([]byte(nil), e.Lo...),
			Hi:        append([]byte(nil), e.Hi...),
			Action:    e.Action,
		}
	}
	return out
}

// ProgramEntries returns a deep copy of the canonical programmed list in
// wire order (reactive Inserts excluded) — the base a Delta addresses.
func (t *Table) ProgramEntries() []Entry {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Entry, len(t.prog))
	for i, e := range t.prog {
		out[i] = Entry{
			ID:        e.ID,
			Priority:  e.Priority,
			Value:     append([]byte(nil), e.Value...),
			Mask:      append([]byte(nil), e.Mask...),
			PrefixLen: e.PrefixLen,
			Lo:        append([]byte(nil), e.Lo...),
			Hi:        append([]byte(nil), e.Hi...),
			Action:    e.Action,
		}
	}
	return out
}

// Lookup matches the frame against the table and returns the action.
// matched reports whether an entry (vs the default action) fired. The
// hot path is lock-free — one atomic load of the current index
// generation — and allocates nothing for key widths up to 64 bytes, so
// concurrent lookups scale linearly with cores.
func (t *Table) Lookup(frame []byte) (act Action, matched bool) {
	st := t.state.Load()
	var kb [64]byte
	var key []byte
	if st.width <= len(kb) {
		key = appendKey(kb[:0], frame, st.key)
	} else {
		key = appendKey(make([]byte, 0, st.width), frame, st.key)
	}
	var hit *Entry
	switch st.kind {
	case MatchExact:
		hit = st.exact[string(key)]
	case MatchTernary:
		var mb [64]byte
		var masked []byte
		if len(key) <= len(mb) {
			masked = mb[:len(key)]
		} else {
			masked = make([]byte, len(key))
		}
		hit = st.tstore.find(key, masked)
	case MatchLPM:
		for _, e := range st.entries {
			if prefixMatch(key, e.Value, e.PrefixLen) {
				hit = e
				break
			}
		}
	case MatchRange:
		if st.rangeIdx != nil {
			if row, ok := st.rangeIdx.Find(key); ok {
				hit = st.entries[row]
			}
		} else {
			for _, e := range st.entries {
				if rangeMatch(key, e.Lo, e.Hi) {
					hit = e
					break
				}
			}
		}
	}
	if hit == nil {
		atomic.AddUint64(&t.misses, 1)
		return st.def, false
	}
	// Direct counters: hits and bytes share the entry's cache line, so the
	// second add is nearly free once the first has claimed the line.
	atomic.AddUint64(&hit.hits, 1)
	atomic.AddUint64(&hit.bytes, uint64(len(frame)))
	atomic.AddUint64(&t.hits, 1)
	return hit.Action, true
}

// LookupOracle is the linear-scan reference for Lookup: it walks the
// sorted entry list first-match (last-match for exact, mirroring the
// map's later-duplicate-wins) with no index, no counters, and no side
// effects. Differential tests assert the indexed Lookup, LookupBatch,
// and Explain never disagree with it on any table generation.
func (t *Table) LookupOracle(frame []byte) (act Action, matched bool) {
	st := t.state.Load()
	key := ExtractKey(frame, st.key)
	hit := st.findLinear(key)
	if hit == nil {
		return st.def, false
	}
	return hit.Action, true
}

// findLinear scans the state's entries without any index, returning the
// entry Lookup must resolve to.
func (st *lookupState) findLinear(key []byte) *Entry {
	var hit *Entry
	switch st.kind {
	case MatchExact:
		for _, e := range st.entries {
			if string(e.Value) == string(key) {
				hit = e // later duplicates win, as in the exact map
			}
		}
	case MatchTernary:
		for _, e := range st.entries {
			if match.MaskedEqual(key, e.Value, e.Mask) {
				return e
			}
		}
	case MatchLPM:
		for _, e := range st.entries {
			if prefixMatch(key, e.Value, e.PrefixLen) {
				return e
			}
		}
	case MatchRange:
		for _, e := range st.entries {
			if rangeMatch(key, e.Lo, e.Hi) {
				return e
			}
		}
	}
	return hit
}

// prefixMask expands a prefix length in bits to a width-byte mask.
func prefixMask(width, prefixLen int) []byte {
	m := make([]byte, width)
	full := prefixLen / 8
	for i := 0; i < full && i < width; i++ {
		m[i] = 0xff
	}
	if rem := prefixLen % 8; rem > 0 && full < width {
		m[full] = byte(0xff << (8 - rem))
	}
	return m
}

func prefixMatch(key, value []byte, prefixLen int) bool {
	full := prefixLen / 8
	for i := 0; i < full; i++ {
		if key[i] != value[i] {
			return false
		}
	}
	if rem := prefixLen % 8; rem > 0 {
		mask := byte(0xff << (8 - rem))
		if key[full]&mask != value[full]&mask {
			return false
		}
	}
	return true
}

func rangeMatch(key, lo, hi []byte) bool {
	for i := range key {
		if key[i] < lo[i] || key[i] > hi[i] {
			return false
		}
	}
	return true
}

// Stats reports table hit/miss counters. HitBytes totals the frame bytes
// of matched packets (missed packets are not byte-counted).
type Stats struct {
	Name     string `json:"name"`
	Entries  int    `json:"entries"`
	Hits     uint64 `json:"hits"`
	Misses   uint64 `json:"misses"`
	HitBytes uint64 `json:"hit_bytes"`
}

// Stats returns a snapshot of the table's counters.
func (t *Table) Stats() Stats {
	s := Stats{
		Name:    t.Name,
		Entries: len(t.state.Load().entries),
		Hits:    atomic.LoadUint64(&t.hits),
		Misses:  atomic.LoadUint64(&t.misses),
	}
	for _, e := range t.state.Load().entries {
		s.HitBytes += atomic.LoadUint64(&e.bytes)
	}
	return s
}

// EntryCounters is a snapshot of one entry's identity and direct
// counters, the P4 `direct_counter(packets_and_bytes)` equivalent.
type EntryCounters struct {
	ID       uint64
	Priority int
	Action   Action
	Hits     uint64
	Bytes    uint64
}

// EntrySnapshots returns a counter snapshot for every installed entry in
// current match order. It reads the lock-free lookup state, so it is safe
// to call at scrape time under full forwarding load.
func (t *Table) EntrySnapshots() []EntryCounters {
	entries := t.state.Load().entries
	out := make([]EntryCounters, len(entries))
	for i, e := range entries {
		out[i] = EntryCounters{
			ID:       e.ID,
			Priority: e.Priority,
			Action:   e.Action,
			Hits:     atomic.LoadUint64(&e.hits),
			Bytes:    atomic.LoadUint64(&e.bytes),
		}
	}
	return out
}

// EntryHits returns the hit counter for one entry.
func (t *Table) EntryHits(id uint64) (uint64, error) {
	for _, e := range t.state.Load().entries {
		if e.ID == id {
			return atomic.LoadUint64(&e.hits), nil
		}
	}
	return 0, fmt.Errorf("table %s: entry %d: %w", t.Name, id, ErrBadEntry)
}
