// Package p4 implements P4Lite, a behavioural model of a programmable
// data plane: a protocol parser expressed as a parse graph, match–action
// tables with exact/ternary/LPM/range match kinds, a staged pipeline,
// per-table and per-entry counters, and a digest queue for sending packet
// samples to the controller. It stands in for the BMv2/Tofino targets the
// paper deployed on, preserving match–action semantics and table cost
// accounting.
package p4

import (
	"errors"
	"fmt"
)

// MatchKind is the match semantics of a table.
type MatchKind int

// Supported match kinds.
const (
	MatchExact MatchKind = iota + 1
	MatchTernary
	MatchLPM
	MatchRange
)

// String returns the P4 name of the match kind.
func (k MatchKind) String() string {
	switch k {
	case MatchExact:
		return "exact"
	case MatchTernary:
		return "ternary"
	case MatchLPM:
		return "lpm"
	case MatchRange:
		return "range"
	default:
		return fmt.Sprintf("matchkind(%d)", int(k))
	}
}

// ActionType is what a table entry does with a packet.
type ActionType int

// Supported actions.
const (
	// ActionAllow forwards the packet and ends the pipeline.
	ActionAllow ActionType = iota + 1
	// ActionDrop discards the packet and ends the pipeline.
	ActionDrop
	// ActionDigest enqueues a digest for the controller and continues to
	// the next table.
	ActionDigest
	// ActionSetClass writes the class metadata and continues.
	ActionSetClass
	// ActionNop continues to the next table.
	ActionNop
)

// String returns the action name.
func (a ActionType) String() string {
	switch a {
	case ActionAllow:
		return "allow"
	case ActionDrop:
		return "drop"
	case ActionDigest:
		return "digest"
	case ActionSetClass:
		return "set_class"
	case ActionNop:
		return "nop"
	default:
		return fmt.Sprintf("actiontype(%d)", int(a))
	}
}

// Action is an action invocation with parameters.
type Action struct {
	Type ActionType
	// Class parameterizes ActionSetClass and annotates verdicts.
	Class int
}

// FieldSpec names one match-key component: a byte range of the frame.
type FieldSpec struct {
	Name   string
	Offset int
	Width  int
}

// KeyWidth sums the widths of the specs.
func KeyWidth(specs []FieldSpec) int {
	var w int
	for _, s := range specs {
		w += s.Width
	}
	return w
}

// ExtractKey concatenates the frame bytes each spec covers; bytes past the
// frame end read as zero (matching parser padding semantics).
func ExtractKey(frame []byte, specs []FieldSpec) []byte {
	return appendKey(make([]byte, 0, KeyWidth(specs)), frame, specs)
}

// appendKey appends the match key to dst, letting hot paths reuse a
// stack buffer instead of allocating per lookup.
func appendKey(dst, frame []byte, specs []FieldSpec) []byte {
	for _, s := range specs {
		for i := 0; i < s.Width; i++ {
			off := s.Offset + i
			if off >= 0 && off < len(frame) {
				dst = append(dst, frame[off])
			} else {
				dst = append(dst, 0)
			}
		}
	}
	return dst
}

// Errors shared by the package.
var (
	// ErrTableFull is returned when MaxEntries would be exceeded.
	ErrTableFull = errors.New("p4: table full")
	// ErrNoSuchTable is returned for operations on unknown tables.
	ErrNoSuchTable = errors.New("p4: no such table")
	// ErrBadEntry is returned for entries inconsistent with the table.
	ErrBadEntry = errors.New("p4: bad entry")
)
