package p4

import (
	"fmt"
	"math/rand"
	"testing"
)

// scaleMaskPool is the benchmark's fixed mask-pattern pool: real rule
// sets compile to a bounded set of mask shapes regardless of entry
// count (prefix expansion over a handful of selected offsets), so the
// partition count saturates while entries grow — the property that
// makes the partitioned hash store sublinear in entries.
func scaleMaskPool() [][]byte {
	pool := make([][]byte, 0, 64)
	bytes := []byte{0x00, 0x80, 0xc0, 0xf0, 0xff}
	for _, a := range bytes {
		for _, b := range bytes {
			for _, c := range []byte{0x00, 0xff} {
				pool = append(pool, []byte{a, b, c, 0xff})
			}
		}
	}
	return pool // 50 patterns
}

func scaleKey() []FieldSpec {
	return []FieldSpec{
		{Name: "b0", Offset: 0, Width: 1},
		{Name: "b1", Offset: 1, Width: 1},
		{Name: "b2", Offset: 2, Width: 1},
		{Name: "b3", Offset: 3, Width: 1},
	}
}

func scaleProgram(rng *rand.Rand, n int) []Entry {
	pool := scaleMaskPool()
	out := make([]Entry, n)
	for i := range out {
		m := pool[rng.Intn(len(pool))]
		v := make([]byte, 4)
		rng.Read(v)
		for j := range v {
			v[j] &= m[j]
		}
		out[i] = Entry{
			Priority: rng.Intn(1024),
			Value:    v,
			Mask:     append([]byte(nil), m...),
			Action:   Action{Type: ActionDrop, Class: 1 + rng.Intn(7)},
		}
	}
	return out
}

// BenchmarkTernaryLookup measures single-key lookup latency across four
// decades of table size. With the fixed mask pool the partition count
// saturates around 50, so ns/op must stay within a small constant
// factor from 1k to 1M entries — the CI sublinearity guard
// (CI_GUARD_SUBLINEAR in scripts/ci.sh) pins 1M <= 4x 1k.
func BenchmarkTernaryLookup(b *testing.B) {
	for _, n := range []int{1_000, 10_000, 100_000, 1_000_000} {
		b.Run(fmt.Sprintf("entries=%d", n), func(b *testing.B) {
			rng := rand.New(rand.NewSource(42))
			tbl := NewTable("det", MatchTernary, scaleKey(), 0, Action{Type: ActionAllow})
			if err := tbl.Replace(scaleProgram(rng, n)); err != nil {
				b.Fatal(err)
			}
			frames := make([][]byte, 1024)
			for i := range frames {
				f := make([]byte, 4)
				rng.Read(f)
				frames[i] = f
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tbl.Lookup(frames[i&1023])
			}
		})
	}
}

// BenchmarkTernaryReplace is the full-swap baseline at 1M entries:
// validate, copy, sort, and rebuild every partition index.
func BenchmarkTernaryReplace(b *testing.B) {
	rng := rand.New(rand.NewSource(42))
	prog := scaleProgram(rng, 1_000_000)
	tbl := NewTable("det", MatchTernary, scaleKey(), 0, Action{Type: ActionAllow})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := tbl.Replace(prog); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTernaryDelta applies a 1%-of-entries edit to a 1M-entry
// table. The delta path's contract (and the PR's acceptance bar) is
// >= 10x faster than the BenchmarkTernaryReplace full swap: the splice
// is O(survivor pointer copies) and the index work is O(edits) hash
// probes with untouched partitions shared, never a full rebuild.
func BenchmarkTernaryDelta(b *testing.B) {
	const n = 1_000_000
	rng := rand.New(rand.NewSource(42))
	prog := scaleProgram(rng, n)
	tbl := NewTable("det", MatchTernary, scaleKey(), 0, Action{Type: ActionAllow})
	if err := tbl.Replace(prog); err != nil {
		b.Fatal(err)
	}
	// 1% churn: delete 5k, re-add 5k fresh entries in their place.
	deltas := make([]Delta, 2)
	for di := range deltas {
		d := Delta{BaseCount: n}
		adds := scaleProgram(rng, n/200)
		for i := range adds {
			slot := i * 150
			d.Deletes = append(d.Deletes, slot)
			d.Adds = append(d.Adds, DeltaAdd{Entry: adds[i], Order: slot})
		}
		deltas[di] = d
	}
	b.ReportAllocs()
	b.ResetTimer()
	// Alternate two same-shape deltas so every iteration applies
	// against a valid 1M-entry base without re-Replacing mid-loop.
	for i := 0; i < b.N; i++ {
		if err := tbl.Apply(deltas[i&1]); err != nil {
			b.Fatal(err)
		}
	}
}
