package p4

import (
	"sync/atomic"
	"time"

	"p4guard/internal/match"
	"p4guard/internal/packet"
)

// Batched zero-copy forwarding. The per-packet Lookup path extracts one
// key, probes one index, and pays three atomic adds per hit; the batch
// path amortizes all of it over a burst:
//
//   - keys for the whole burst are gathered straight from the raw frame
//     bytes into a struct-of-arrays match.KeyBatch (no packet.Packet
//     header structs, no per-key allocations);
//   - a per-worker direct-mapped flow cache (the software-switch EMC
//     idiom) short-circuits repeated keys: a cached verdict is provably
//     identical to a fresh lookup because table lookup is a pure
//     function of (lookup state, key) and every cache entry is tagged
//     with the state generation that produced it;
//   - cache misses fall through to the kind-specific index — the bitset
//     range engine batched over the miss set, the partitioned ternary
//     trie store and LPM with 64-bit lane compares (match.MaskBytes /
//     match.MaskedEqual) instead of per-byte loops;
//   - direct counters are tallied with run-length merging and one pair
//     of table-level atomic adds per batch instead of three atomic
//     read-modify-writes per packet;
//   - digests are collected per batch and enqueued under one lock with
//     one clock read (queueDigestBatch), preserving the queue's
//     offered/queued/drained/dropped invariants exactly.
//
// Everything lives in a caller-owned BatchWorkspace, so the steady-state
// loop allocates nothing.

// flowKeyMax is the widest key the flow cache holds. Learned detector
// layouts are ≤ 8 bytes; wider keys skip the cache and always take the
// index path.
const flowKeyMax = 16

// flowCacheSlots is the direct-mapped cache size (power of two).
const flowCacheSlots = 1024

// flowSlot caches one resolved key: the entry that matched (nil for a
// recorded miss) tagged with the generation that produced it. Keys are
// held as two zero-padded little-endian words so a probe is two integer
// compares instead of a byte loop. row is the entry's dense index in
// the state's entry list (-1 when the kind resolves without one); it
// rides along so cache hits can still use the batched counter tally.
type flowSlot struct {
	gen    uint32
	klen   uint8
	miss   bool
	row    int32
	k0, k1 uint64
	entry  *Entry
}

// flowCache is one table's direct-mapped exact-match cache inside a
// workspace. It is generation-tagged: whenever the table's lookup state
// pointer changes (insert, delete, program, reindex), gen is bumped and
// every cached slot goes stale at once — no per-slot invalidation, no
// coordination with writers. Holding the state pointer for the identity
// compare also pins it, so a recycled allocation can never alias a
// previous generation.
type flowCache struct {
	owner *Table
	state *lookupState
	gen   uint32
	slots []flowSlot
}

// sync points the cache at the table's current lookup state and reports
// whether the cache is usable for this batch.
func (c *flowCache) sync(t *Table, st *lookupState) bool {
	if st.width == 0 || st.width > flowKeyMax {
		return false
	}
	if c.owner != t || c.state != st {
		c.owner, c.state = t, st
		c.gen++
		if c.gen == 0 {
			// Generation counter wrapped: hard-clear so slots tagged with
			// a recycled generation number cannot read as fresh.
			for i := range c.slots {
				c.slots[i] = flowSlot{}
			}
			c.gen = 1
		}
		if c.slots == nil {
			c.slots = make([]flowSlot, flowCacheSlots)
		}
	}
	return true
}

// flowWords packs a key (len ≤ flowKeyMax) into two zero-padded
// little-endian words. Written as two shift loops (no scratch buffer,
// no copy) so it stays within the inlining budget.
func flowWords(key []byte) (k0, k1 uint64) {
	for i := len(key) - 1; i >= 8; i-- {
		k1 = k1<<8 | uint64(key[i])
	}
	n := len(key)
	if n > 8 {
		n = 8
	}
	for i := n - 1; i >= 0; i-- {
		k0 = k0<<8 | uint64(key[i])
	}
	return k0, k1
}

// flowHash mixes the packed key words into a slot index
// (Fibonacci-style multiply hashing; the high bits carry the mixing).
func flowHash(k0, k1 uint64) uint32 {
	return uint32((k0*0x9e3779b97f4a7c15 ^ k1*0xc2b2ae3d27d4eb4f) >> 40)
}

// get probes the cache. ok distinguishes "no information" from a cached
// miss (ok=true, entry=nil).
func (c *flowCache) get(k0, k1 uint64, klen int) (entry *Entry, row int32, ok bool) {
	s := &c.slots[flowHash(k0, k1)&(flowCacheSlots-1)]
	if s.gen != c.gen || int(s.klen) != klen || s.k0 != k0 || s.k1 != k1 {
		return nil, -1, false
	}
	if s.miss {
		return nil, -1, true
	}
	return s.entry, s.row, true
}

// put records a resolved key (entry nil = miss).
func (c *flowCache) put(k0, k1 uint64, klen int, entry *Entry, row int32) {
	s := &c.slots[flowHash(k0, k1)&(flowCacheSlots-1)]
	s.gen = c.gen
	s.klen = uint8(klen)
	s.miss = entry == nil
	s.row = row
	s.k0, s.k1 = k0, k1
	s.entry = entry
}

// BatchWorkspace holds every per-burst buffer the batched pipeline
// needs: the SoA key batch, per-packet resolution arrays, the active-set
// scratch, the digest staging area, and one flow cache per pipeline
// table slot. A workspace belongs to one worker at a time (arenas hand
// them out); after warm-up, running batches through it allocates
// nothing.
type BatchWorkspace struct {
	keys    match.KeyBatch
	hits    []*Entry // resolved entry per packet index (nil = miss)
	hitRows []int32  // dense entry-list row per packet index (-1 = none)
	acts    []Action // resolved action per packet index
	matched []bool   // non-default entry fired, per packet index
	act     []int32  // packets still running, filtered per table
	pend    []int32  // cache-missed packets needing an index probe
	rows    []int32  // range-index rows parallel to pend
	digests []Digest // staged digests, flushed once per batch
	caches  []flowCache
	masked  [64]byte // lane-masking scratch for ternary probes

	// Per-row counter accumulation: deltas gather here (indexed by the
	// state's dense entry row) and flush as one atomic add pair per
	// distinct entry per batch. touched lists the dirty rows so the
	// flush never scans or clears the whole table.
	aggHits  []uint64
	aggBytes []uint64
	touched  []int32
}

// ensure sizes the per-packet arrays for n packets and t table slots.
func (ws *BatchWorkspace) ensure(n, t int) {
	if cap(ws.hits) < n {
		ws.hits = make([]*Entry, n)
		ws.hitRows = make([]int32, n)
		ws.acts = make([]Action, n)
		ws.matched = make([]bool, n)
	}
	ws.hits = ws.hits[:n]
	ws.hitRows = ws.hitRows[:n]
	ws.acts = ws.acts[:n]
	ws.matched = ws.matched[:n]
	if cap(ws.act) < n {
		ws.act = make([]int32, n)
		ws.pend = make([]int32, n)
		ws.rows = make([]int32, n)
		ws.touched = make([]int32, 0, n)
	}
	if len(ws.caches) < t {
		ws.caches = append(ws.caches, make([]flowCache, t-len(ws.caches))...)
	}
}

// ensureAgg sizes the per-row accumulators for a state with ne entries.
// The buffers stay zeroed between batches (the flush clears only the
// rows it touched).
func (ws *BatchWorkspace) ensureAgg(ne int) {
	if cap(ws.aggHits) < ne {
		ws.aggHits = make([]uint64, ne)
		ws.aggBytes = make([]uint64, ne)
	}
	ws.aggHits = ws.aggHits[:cap(ws.aggHits)]
	ws.aggBytes = ws.aggBytes[:cap(ws.aggBytes)]
}

// LookupBatch resolves the table for every packet index in active,
// writing the action into ws.acts[idx], the matched flag into
// ws.matched[idx], and the hit entry (for counter tallying) into
// ws.hits[idx]. Counter effects are identical to calling Lookup once per
// packet: per-entry hits/bytes and table hits/misses advance by exactly
// the same amounts, just batched into one atomic add per run of equal
// entries and one pair per table. slot selects the workspace flow cache
// (the caller's pipeline position of t). The lookup state is loaded once
// for the whole burst, so a batch observes one table generation.
func (t *Table) LookupBatch(pkts []*packet.Packet, active []int32, ws *BatchWorkspace, slot int) {
	if len(active) == 0 {
		return
	}
	ws.ensure(len(pkts), slot+1)
	st := t.state.Load()
	width := st.width
	ws.keys.Reset(width, len(pkts))

	cache := &ws.caches[slot]
	cached := cache.sync(t, st)

	// Gather keys for the active set straight from the frames, then
	// resolve each key from the flow cache or collect it for the index.
	pend := ws.pend[:0]
	for _, idx := range active {
		key := ws.keys.Key(int(idx))
		fillKey(key, pkts[idx].Bytes, st.key)
		if cached {
			k0, k1 := flowWords(key)
			if e, row, ok := cache.get(k0, k1, width); ok {
				ws.hits[idx] = e
				ws.hitRows[idx] = row
				continue
			}
		}
		pend = append(pend, idx)
	}

	if len(pend) > 0 {
		switch st.kind {
		case MatchRange:
			if st.rangeIdx != nil {
				rows := ws.rows[:len(pend)]
				st.rangeIdx.FindBatchIdx(&ws.keys, pend, rows)
				for j, idx := range pend {
					if rows[j] >= 0 {
						ws.hits[idx] = st.entries[rows[j]]
					} else {
						ws.hits[idx] = nil
					}
					ws.hitRows[idx] = rows[j]
				}
			} else {
				for _, idx := range pend {
					row := st.findRangeScan(ws.keys.Key(int(idx)))
					ws.hitRows[idx] = row
					if row >= 0 {
						ws.hits[idx] = st.entries[row]
					} else {
						ws.hits[idx] = nil
					}
				}
			}
		case MatchExact:
			for _, idx := range pend {
				ws.hits[idx] = st.exact[string(ws.keys.Key(int(idx)))]
				ws.hitRows[idx] = -1
			}
		case MatchTernary:
			for _, idx := range pend {
				ws.hits[idx] = st.findTernaryLanes(ws.keys.Key(int(idx)), ws.masked[:width])
				ws.hitRows[idx] = -1
			}
		case MatchLPM:
			for _, idx := range pend {
				row := st.findLPMLanes(ws.keys.Key(int(idx)))
				ws.hitRows[idx] = row
				if row >= 0 {
					ws.hits[idx] = st.entries[row]
				} else {
					ws.hits[idx] = nil
				}
			}
		default:
			for _, idx := range pend {
				ws.hits[idx] = nil
				ws.hitRows[idx] = -1
			}
		}
		if cached {
			for _, idx := range pend {
				k0, k1 := flowWords(ws.keys.Key(int(idx)))
				cache.put(k0, k1, width, ws.hits[idx], ws.hitRows[idx])
			}
		}
	}

	// Tally counters per batch. Hits that carry a dense row accumulate
	// into the workspace and flush as one atomic add pair per distinct
	// entry; kinds without a dense row (exact, ternary) fold runs of
	// equal entries. Table-level hit/miss counters advance once per
	// batch. The final counter values are identical to per-packet
	// Lookup in every case.
	ws.ensureAgg(len(st.entries))
	touched := ws.touched[:0]
	var nHits, nMiss uint64
	var cur *Entry
	var curHits, curBytes uint64
	for _, idx := range active {
		e := ws.hits[idx]
		if e == nil {
			nMiss++
			ws.acts[idx] = st.def
			ws.matched[idx] = false
			continue
		}
		nHits++
		ws.acts[idx] = e.Action
		ws.matched[idx] = true
		if row := ws.hitRows[idx]; row >= 0 {
			if ws.aggHits[row] == 0 {
				touched = append(touched, row)
			}
			ws.aggHits[row]++
			ws.aggBytes[row] += uint64(len(pkts[idx].Bytes))
			continue
		}
		if e != cur {
			if cur != nil {
				atomic.AddUint64(&cur.hits, curHits)
				atomic.AddUint64(&cur.bytes, curBytes)
			}
			cur, curHits, curBytes = e, 0, 0
		}
		curHits++
		curBytes += uint64(len(pkts[idx].Bytes))
	}
	if cur != nil {
		atomic.AddUint64(&cur.hits, curHits)
		atomic.AddUint64(&cur.bytes, curBytes)
	}
	for _, row := range touched {
		e := st.entries[row]
		atomic.AddUint64(&e.hits, ws.aggHits[row])
		atomic.AddUint64(&e.bytes, ws.aggBytes[row])
		ws.aggHits[row], ws.aggBytes[row] = 0, 0
	}
	ws.touched = touched[:0]
	if nHits > 0 {
		atomic.AddUint64(&t.hits, nHits)
	}
	if nMiss > 0 {
		atomic.AddUint64(&t.misses, nMiss)
	}
}

// fillKey writes the match key for the specs into dst (len == key
// width), zero-padding bytes past the frame end — appendKey semantics
// without the append.
func fillKey(dst, frame []byte, specs []FieldSpec) {
	k := 0
	for _, s := range specs {
		for i := 0; i < s.Width; i++ {
			off := s.Offset + i
			if off >= 0 && off < len(frame) {
				dst[k] = frame[off]
			} else {
				dst[k] = 0
			}
			k++
		}
	}
}

// findTernaryLanes probes the partitioned trie store with the caller's
// lane-masking scratch — the same walk (and tie-breaking) as Lookup.
func (st *lookupState) findTernaryLanes(key, masked []byte) *Entry {
	return st.tstore.find(key, masked)
}

// findLPMLanes is the longest-prefix scan with prefixMatch replaced by a
// lane compare against the state's precomputed prefix masks. Entries are
// sorted by descending prefix length, so the first hit wins. Returns the
// dense entry row, or -1 on miss.
func (st *lookupState) findLPMLanes(key []byte) int32 {
	for i, e := range st.entries {
		if match.MaskedEqual(key, e.Value, st.lpmMasks[i]) {
			return int32(i)
		}
	}
	return -1
}

// findRangeScan is the linear range fallback for states whose bitset
// index could not be compiled. Returns the dense entry row, or -1 on
// miss.
func (st *lookupState) findRangeScan(key []byte) int32 {
	for i, e := range st.entries {
		if rangeMatch(key, e.Lo, e.Hi) {
			return int32(i)
		}
	}
	return -1
}

// RunTablesBatch applies a table snapshot to a burst: for each packet
// index in active, the verdict lands in out[idx]. Per-packet action
// semantics are exactly RunTables'; the differences are batch-granular
// only — each table's lookup state is read once per burst, and digests
// are staged in the workspace and enqueued under one lock with one
// shared timestamp after the last table (so with several digesting
// tables the queue interleaving is table-major rather than packet-major;
// counts and flags are identical either way).
func (p *Pipeline) RunTablesBatch(tables []*Table, pkts []*packet.Packet, active []int32, ws *BatchWorkspace, out []Verdict) {
	ws.ensure(len(pkts), len(tables))
	for _, idx := range active {
		out[idx] = Verdict{Allowed: true}
	}
	run := ws.act[:0]
	run = append(run, active...)
	ws.digests = ws.digests[:0]
	for slot, t := range tables {
		if len(run) == 0 {
			break
		}
		t.LookupBatch(pkts, run, ws, slot)
		live := run[:0]
		for _, idx := range run {
			v := &out[idx]
			v.Matched = v.Matched || ws.matched[idx]
			act := ws.acts[idx]
			switch act.Type {
			case ActionAllow:
				v.Allowed = true
				v.Class = act.Class
			case ActionDrop:
				v.Allowed = false
				v.Class = act.Class
			case ActionDigest:
				ws.digests = append(ws.digests, Digest{Table: t.Name, Pkt: pkts[idx]})
				v.Digested = true
				live = append(live, idx)
			case ActionSetClass:
				v.Class = act.Class
				live = append(live, idx)
			case ActionNop:
				live = append(live, idx)
			}
		}
		run = live
	}
	if len(ws.digests) > 0 {
		p.queueDigestBatch(ws.digests)
		// Drop the packet references so a pooled workspace does not pin
		// frames from old bursts.
		for i := range ws.digests {
			ws.digests[i] = Digest{}
		}
		ws.digests = ws.digests[:0]
	}
}

// queueDigestBatch enqueues a burst of digests under one lock with one
// clock read, with per-digest accounting identical to queueDigest:
// offered counts every digest, overflow increments dropped, acceptance
// increments queued.
func (p *Pipeline) queueDigestBatch(ds []Digest) {
	now := time.Now()
	p.mu.Lock()
	defer p.mu.Unlock()
	for i := range ds {
		p.offered++
		if len(p.digests) >= p.maxQ {
			p.dropped++
			continue
		}
		d := ds[i]
		d.At = now
		p.queued++
		p.digests = append(p.digests, d)
	}
}
