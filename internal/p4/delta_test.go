package p4

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
)

func key2() []FieldSpec {
	return []FieldSpec{
		{Name: "b0", Offset: 0, Width: 1},
		{Name: "b1", Offset: 1, Width: 1},
	}
}

// randTernaryProgram builds a duplicate-free ternary program over a
// 2-byte key: a small mask pool forces partition reuse, a small
// priority range forces ties resolved by canonical order.
func randTernaryProgram(rng *rand.Rand, n int) []Entry {
	masks := [][]byte{
		{0xff, 0xff}, {0xff, 0x00}, {0xf0, 0x00},
		{0x80, 0x80}, {0x00, 0x00}, {0xc0, 0xff},
	}
	seen := make(map[string]bool, n)
	out := make([]Entry, 0, n)
	for len(out) < n {
		m := masks[rng.Intn(len(masks))]
		v := []byte{byte(rng.Intn(256)) & m[0], byte(rng.Intn(256)) & m[1]}
		k := string(v) + "|" + string(m)
		if seen[k] {
			continue
		}
		seen[k] = true
		out = append(out, Entry{
			Priority: rng.Intn(6),
			Value:    v,
			Mask:     append([]byte(nil), m...),
			Action:   Action{Type: ActionDrop, Class: 1 + rng.Intn(5)},
		})
	}
	return out
}

// mutateProgram derives an edited program: deletions, priority moves,
// and insertions at random positions, keeping survivors in base order
// so ComputeDelta always succeeds.
func mutateProgram(rng *rand.Rand, old []Entry) []Entry {
	seen := make(map[string]bool, len(old))
	for i := range old {
		seen[string(old[i].Value)+"|"+string(old[i].Mask)] = true
	}
	out := make([]Entry, 0, len(old))
	for _, e := range old {
		switch rng.Intn(10) {
		case 0: // delete
		case 1, 2: // move
			e.Priority = rng.Intn(6)
			out = append(out, e)
		default:
			out = append(out, e)
		}
	}
	for _, a := range randTernaryProgram(rng, 4) {
		k := string(a.Value) + "|" + string(a.Mask)
		if seen[k] {
			continue
		}
		seen[k] = true
		pos := rng.Intn(len(out) + 1)
		out = append(out[:pos], append([]Entry{a}, out[pos:]...)...)
	}
	return out
}

func ternaryCorpus(rng *rand.Rand, n int) [][]byte {
	frames := make([][]byte, n)
	for i := range frames {
		frames[i] = []byte{byte(rng.Intn(256)), byte(rng.Intn(256))}
	}
	return frames
}

func zeroID(e Entry) Entry {
	e.ID = 0
	return e
}

func entriesEqualIgnoringID(a, b []Entry) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if fmt.Sprintf("%+v", zeroID(a[i])) != fmt.Sprintf("%+v", zeroID(b[i])) {
			return false
		}
	}
	return true
}

// TestApplyMatchesReplace is the delta round-trip property: for random
// base programs and random edits, Apply(ComputeDelta(old, new)) must
// leave the table in exactly the state Replace(new) would — same wire
// program (IDs aside), same signature hash, same verdict for every key
// against both the indexed lookup and the linear oracle.
func TestApplyMatchesReplace(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		rng := rand.New(rand.NewSource(seed))
		oldP := randTernaryProgram(rng, 20+rng.Intn(30))
		newP := mutateProgram(rng, oldP)

		d, ok := ComputeDelta(oldP, newP)
		if !ok {
			t.Fatalf("seed %d: ComputeDelta failed on an order-preserving edit", seed)
		}

		tblA := NewTable("a", MatchTernary, key2(), 0, Action{Type: ActionAllow})
		if err := tblA.Replace(oldP); err != nil {
			t.Fatal(err)
		}
		if err := tblA.Apply(d); err != nil {
			t.Fatalf("seed %d: apply: %v", seed, err)
		}
		tblB := NewTable("b", MatchTernary, key2(), 0, Action{Type: ActionAllow})
		if err := tblB.Replace(newP); err != nil {
			t.Fatal(err)
		}

		if !entriesEqualIgnoringID(tblA.ProgramEntries(), tblB.ProgramEntries()) {
			t.Fatalf("seed %d: delta-applied program differs from Replace(new)", seed)
		}
		ca, ha := tblA.ProgramSignature()
		cb, hb := tblB.ProgramSignature()
		if ca != cb || ha != hb {
			t.Fatalf("seed %d: signatures differ: (%d,%#x) vs (%d,%#x)", seed, ca, ha, cb, hb)
		}
		for _, frame := range ternaryCorpus(rng, 200) {
			aa, am := tblA.Lookup(frame)
			ba, bm := tblB.Lookup(frame)
			if aa != ba || am != bm {
				t.Fatalf("seed %d: frame %v: delta table (%v,%v) != replace table (%v,%v)",
					seed, frame, aa, am, ba, bm)
			}
			oa, om := tblA.LookupOracle(frame)
			if oa != aa || om != am {
				t.Fatalf("seed %d: frame %v: lookup (%v,%v) != oracle (%v,%v)",
					seed, frame, aa, am, oa, om)
			}
		}
	}
}

func TestApplyBaseMismatch(t *testing.T) {
	prog := []Entry{
		{Priority: 1, Value: []byte{1, 0}, Mask: []byte{0xff, 0x00}, Action: Action{Type: ActionDrop, Class: 1}},
		{Priority: 2, Value: []byte{2, 0}, Mask: []byte{0xff, 0x00}, Action: Action{Type: ActionDrop, Class: 2}},
	}
	tbl := NewTable("det", MatchTernary, key2(), 0, Action{Type: ActionAllow})
	if err := tbl.Replace(prog); err != nil {
		t.Fatal(err)
	}
	before := tbl.ProgramEntries()

	if err := tbl.Apply(Delta{BaseCount: 7}); !errors.Is(err, ErrDeltaBase) {
		t.Fatalf("count mismatch: err = %v, want ErrDeltaBase", err)
	}
	_, hash := tbl.ProgramSignature()
	if err := tbl.Apply(Delta{BaseCount: 2, BaseHash: hash ^ 1, Deletes: []int{0}}); !errors.Is(err, ErrDeltaBase) {
		t.Fatalf("hash mismatch: err = %v, want ErrDeltaBase", err)
	}
	// Zero BaseHash skips the hash check.
	if err := tbl.Apply(Delta{BaseCount: 2, Deletes: []int{1}}); err != nil {
		t.Fatalf("unhashed delta: %v", err)
	}
	if got := tbl.ProgramEntries(); len(got) != 1 || got[0].Value[0] != before[0].Value[0] {
		t.Fatalf("delete left %+v", got)
	}
}

func TestApplyAtomicOnError(t *testing.T) {
	prog := []Entry{
		{Priority: 1, Value: []byte{1, 0}, Mask: []byte{0xff, 0x00}, Action: Action{Type: ActionDrop, Class: 1}},
		{Priority: 2, Value: []byte{2, 0}, Mask: []byte{0xff, 0x00}, Action: Action{Type: ActionDrop, Class: 2}},
	}
	tbl := NewTable("det", MatchTernary, key2(), 0, Action{Type: ActionAllow})
	if err := tbl.Replace(prog); err != nil {
		t.Fatal(err)
	}
	before := tbl.ProgramEntries()
	_, beforeHash := tbl.ProgramSignature()

	bad := []Delta{
		{BaseCount: 2, Deletes: []int{5}},                                                                // delete out of range
		{BaseCount: 2, Deletes: []int{0, 0}},                                                             // duplicate removal
		{BaseCount: 2, Moves: []DeltaMove{{Base: 0, Priority: 9, Order: 7}}},                             // order out of range
		{BaseCount: 2, Adds: []DeltaAdd{{Entry: Entry{Value: []byte{1}, Mask: []byte{0xff}}, Order: 2}}}, // bad width
		{BaseCount: 2, Adds: []DeltaAdd{ // colliding orders
			{Entry: Entry{Value: []byte{9, 0}, Mask: []byte{0xff, 0x00}, Action: Action{Type: ActionDrop}}, Order: 2},
			{Entry: Entry{Value: []byte{8, 0}, Mask: []byte{0xff, 0x00}, Action: Action{Type: ActionDrop}}, Order: 2},
		}},
	}
	for i, d := range bad {
		if err := tbl.Apply(d); err == nil {
			t.Fatalf("bad delta %d applied", i)
		}
		if !entriesEqualIgnoringID(tbl.ProgramEntries(), before) {
			t.Fatalf("bad delta %d mutated the table", i)
		}
		if _, h := tbl.ProgramSignature(); h != beforeHash {
			t.Fatalf("bad delta %d changed the signature", i)
		}
	}
}

// TestApplyPreservesCountersAndInserted: a delta touches only what it
// names — surviving programmed entries keep their IDs and live hit
// counters, and reactive Inserts stay installed (unlike Replace, which
// wipes them).
func TestApplyPreservesCountersAndInserted(t *testing.T) {
	prog := []Entry{
		{Priority: 5, Value: []byte{1, 0}, Mask: []byte{0xff, 0x00}, Action: Action{Type: ActionDrop, Class: 1}},
		{Priority: 4, Value: []byte{2, 0}, Mask: []byte{0xff, 0x00}, Action: Action{Type: ActionDrop, Class: 2}},
	}
	tbl := NewTable("det", MatchTernary, key2(), 0, Action{Type: ActionAllow})
	if err := tbl.Replace(prog); err != nil {
		t.Fatal(err)
	}
	survivorID := tbl.ProgramEntries()[0].ID
	reactiveID, err := tbl.Insert(Entry{Priority: 9, Value: []byte{7, 7}, Mask: []byte{0xff, 0xff},
		Action: Action{Type: ActionDrop, Class: 9}})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		tbl.Lookup([]byte{1, 0}) // bump the survivor's counter
	}

	d := Delta{
		BaseCount: 2,
		BaseHash:  HashEntries(prog),
		Deletes:   []int{1},
		Adds: []DeltaAdd{{Entry: Entry{Priority: 3, Value: []byte{3, 0}, Mask: []byte{0xff, 0x00},
			Action: Action{Type: ActionDrop, Class: 3}}, Order: 1}},
	}
	if err := tbl.Apply(d); err != nil {
		t.Fatal(err)
	}
	hits, err := tbl.EntryHits(survivorID)
	if err != nil || hits != 3 {
		t.Fatalf("survivor hits = %d, err = %v, want 3 kept across Apply", hits, err)
	}
	if _, err := tbl.EntryHits(reactiveID); err != nil {
		t.Fatalf("reactive entry lost by Apply: %v", err)
	}
	if act, _ := tbl.Lookup([]byte{7, 7}); act.Class != 9 {
		t.Fatalf("reactive entry not matching after Apply: %+v", act)
	}
	// Replace wipes reactive state; Apply must not have.
	if err := tbl.Replace(prog); err != nil {
		t.Fatal(err)
	}
	if _, err := tbl.EntryHits(reactiveID); err == nil {
		t.Fatal("Replace kept a reactive entry")
	}
}

func TestComputeDeltaBails(t *testing.T) {
	mk := func(v byte, prio int) Entry {
		return Entry{Priority: prio, Value: []byte{v, 0}, Mask: []byte{0xff, 0x00},
			Action: Action{Type: ActionDrop, Class: 1}}
	}
	// Duplicate match keys on either side are ambiguous.
	if _, ok := ComputeDelta([]Entry{mk(1, 1), mk(1, 2)}, []Entry{mk(2, 1)}); ok {
		t.Fatal("duplicate old keys accepted")
	}
	if _, ok := ComputeDelta([]Entry{mk(2, 1)}, []Entry{mk(1, 1), mk(1, 2)}); ok {
		t.Fatal("duplicate new keys accepted")
	}
	// Survivors that swap relative order cannot be expressed.
	oldP := []Entry{mk(1, 1), mk(2, 1)}
	newP := []Entry{mk(2, 1), mk(1, 1)}
	if _, ok := ComputeDelta(oldP, newP); ok {
		t.Fatal("survivor reorder accepted")
	}
	// The same swap with a priority change is a move, which is fine.
	newP = []Entry{mk(2, 5), mk(1, 1)}
	d, ok := ComputeDelta(oldP, newP)
	if !ok || len(d.Moves) != 1 {
		t.Fatalf("move-based reorder rejected: ok=%v delta=%+v", ok, d)
	}
}

// TestApplyRangeTable covers the non-ternary Apply path (full reindex):
// the edit semantics are identical even though the index is rebuilt.
func TestApplyRangeTable(t *testing.T) {
	mk := func(lo, hi byte, prio, class int) Entry {
		return Entry{Priority: prio, Lo: []byte{lo, 0}, Hi: []byte{hi, 0xff},
			Action: Action{Type: ActionDrop, Class: class}}
	}
	oldP := []Entry{mk(0, 50, 3, 1), mk(51, 100, 2, 2), mk(101, 200, 1, 3)}
	newP := []Entry{mk(0, 50, 3, 1), mk(101, 200, 1, 3), mk(201, 250, 1, 4)}
	d, ok := ComputeDelta(oldP, newP)
	if !ok {
		t.Fatal("range delta not computed")
	}
	tblA := NewTable("ra", MatchRange, key2(), 0, Action{Type: ActionAllow})
	if err := tblA.Replace(oldP); err != nil {
		t.Fatal(err)
	}
	if err := tblA.Apply(d); err != nil {
		t.Fatal(err)
	}
	tblB := NewTable("rb", MatchRange, key2(), 0, Action{Type: ActionAllow})
	if err := tblB.Replace(newP); err != nil {
		t.Fatal(err)
	}
	for v := 0; v < 256; v++ {
		frame := []byte{byte(v), 9}
		aa, am := tblA.Lookup(frame)
		ba, bm := tblB.Lookup(frame)
		if aa != ba || am != bm {
			t.Fatalf("byte %d: delta (%v,%v) != replace (%v,%v)", v, aa, am, ba, bm)
		}
	}
}

// TestTernaryDeltaChurnDifferential hammers a ternary table with
// concurrent lock-free readers while the writer churns it through
// Apply deltas, reactive Inserts, and Deletes, asserting after every
// mutation that the trie-backed Lookup, the linear oracle, and Explain
// agree on a spread of keys. Run with -race this is the persistent
// store's publication-safety proof.
func TestTernaryDeltaChurnDifferential(t *testing.T) {
	for _, workers := range []int{1, 2, 4} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(workers) * 97))
			tbl := NewTable("det", MatchTernary, key2(), 0, Action{Type: ActionAllow})
			prog := randTernaryProgram(rng, 40)
			if err := tbl.Replace(prog); err != nil {
				t.Fatal(err)
			}
			frames := ternaryCorpus(rng, 64)

			stop := make(chan struct{})
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(seed int64) {
					defer wg.Done()
					r := rand.New(rand.NewSource(seed))
					for {
						select {
						case <-stop:
							return
						default:
							tbl.Lookup([]byte{byte(r.Intn(256)), byte(r.Intn(256))})
						}
					}
				}(int64(w + 1))
			}

			var reactive []uint64
			for round := 0; round < 60; round++ {
				switch rng.Intn(4) {
				case 0:
					id, err := tbl.Insert(Entry{
						Priority: rng.Intn(6),
						Value:    []byte{byte(rng.Intn(256)), byte(rng.Intn(256))},
						Mask:     []byte{0xff, 0xff},
						Action:   Action{Type: ActionDrop, Class: 7},
					})
					if err != nil {
						t.Fatal(err)
					}
					reactive = append(reactive, id)
				case 1:
					if len(reactive) > 0 {
						i := rng.Intn(len(reactive))
						if err := tbl.Delete(reactive[i]); err != nil {
							t.Fatal(err)
						}
						reactive = append(reactive[:i], reactive[i+1:]...)
					}
				default:
					next := mutateProgram(rng, prog)
					d, ok := ComputeDelta(prog, next)
					if !ok {
						t.Fatalf("round %d: delta not computable", round)
					}
					if err := tbl.Apply(d); err != nil {
						t.Fatalf("round %d: apply: %v", round, err)
					}
					prog = next
				}
				for _, frame := range frames {
					la, lm := tbl.Lookup(frame)
					oa, om := tbl.LookupOracle(frame)
					if la != oa || lm != om {
						t.Fatalf("round %d frame %v: lookup (%v,%v) != oracle (%v,%v)",
							round, frame, la, lm, oa, om)
					}
				}
				explainLookupAgree(t, tbl, frames)
			}
			close(stop)
			wg.Wait()
		})
	}
}

// TestDefineApplyLifecycle covers the split programming API: Define
// keeps entries across a layout-compatible redefine, wipes them when
// the layout changes, and the deprecated Program shim remains
// equivalent to Define+Replace.
func TestDefineApplyLifecycle(t *testing.T) {
	tbl := NewTable("det", MatchTernary, key2(), 0, Action{Type: ActionAllow})
	prog := []Entry{{Priority: 1, Value: []byte{1, 2}, Mask: []byte{0xff, 0xff},
		Action: Action{Type: ActionDrop, Class: 1}}}
	if err := tbl.Replace(prog); err != nil {
		t.Fatal(err)
	}
	// Same layout, new default: entries survive.
	if err := tbl.Define(key2(), Action{Type: ActionDigest}); err != nil {
		t.Fatal(err)
	}
	if tbl.Len() != 1 {
		t.Fatalf("compatible Define wiped entries: len=%d", tbl.Len())
	}
	if act, matched := tbl.Lookup([]byte{9, 9}); matched || act.Type != ActionDigest {
		t.Fatalf("new default not in effect: (%v,%v)", act, matched)
	}
	// New layout: entries cannot survive a different key shape.
	if err := tbl.Define(key1(), Action{Type: ActionAllow}); err != nil {
		t.Fatal(err)
	}
	if tbl.Len() != 0 {
		t.Fatalf("layout change kept entries: len=%d", tbl.Len())
	}
	// Program shim == Define + Replace.
	if err := tbl.Program(key2(), Action{Type: ActionAllow}, prog); err != nil {
		t.Fatal(err)
	}
	if act, matched := tbl.Lookup([]byte{1, 2}); !matched || act.Class != 1 {
		t.Fatalf("Program shim: (%v,%v)", act, matched)
	}
}
