package p4

import (
	"bytes"
	"sort"

	"p4guard/internal/match"
)

// Partitioned ternary store. The previous tuple-space search probed one
// hash group per distinct mask, visiting every group on every lookup;
// this store keeps the per-mask partitioning but makes the costs that
// grow with table size sublinear:
//
//   - partitions are ordered by their maximum entry priority and the
//     walk stops as soon as no remaining partition can outrank the best
//     hit so far, so high-priority matches touch a handful of
//     partitions instead of all of them;
//   - each partition indexes its masked values in an open-addressing
//     hash table whose slots pair the leaf pointer with the key's full
//     hash. A non-matching partition (the common case: a key matches a
//     handful of the partitions) costs one slot-array load and a tag
//     compare — no pointer chase — and successive partitions' probes
//     are independent loads the CPU overlaps, unlike a bitwise trie
//     whose O(log n) node hops are each a dependent cache miss. That
//     data-dependency difference is what keeps million-entry lookups
//     within a small constant factor of thousand-entry ones.
//
// Published slot arrays are immutable: delta application copies the
// slot array of each touched partition once per batch (copy-on-write),
// shares every untouched partition with the previous generation, and
// purges tombstones by rehashing when they accumulate — which is what
// makes Apply cheap and concurrent lookups on old generations safe
// without locks.
//
// Tie-breaking is exact: the winner is the matching entry that beats
// all others under the table's canonical match order (priority, then
// canonical rank — see sortByPriority), which the linear-scan oracle
// reproduces by walking the sorted entry list first-match.

// tleaf holds every entry sharing one masked value, best-first under
// the canonical match order, so deleting a winner resurfaces the
// shadowed runner-up exactly as a full rebuild would.
type tleaf struct {
	key []byte // the masked value (aliases a member entry's Value)
	es  []*Entry
}

// tombstone marks a vacated slot so linear-probe chains stay intact
// across persistent deletes; rehashes purge them.
var tombstone = &tleaf{}

// tslot pairs a leaf with its key's full hash: probes compare tags
// before touching the leaf, so scanning a partition that does not hold
// the key reads only the slot array.
type tslot struct {
	tag  uint64
	leaf *tleaf // nil = never occupied (probe stop), tombstone = deleted
}

// Open-addressing load ceiling: grow when occupied slots (live plus
// tombstones) would exceed tLoadNum/tLoadDen of capacity. Keeping the
// ceiling under 1 also guarantees every probe loop terminates.
const (
	tLoadNum = 7
	tLoadDen = 10
)

// thash is FNV-1a over the masked value; computed from bytes already in
// cache, it costs no memory traffic.
func thash(key []byte) uint64 {
	h := uint64(14695981039346656037)
	for _, b := range key {
		h ^= uint64(b)
		h *= 1099511628211
	}
	return h
}

// slotsFor returns the smallest power-of-two capacity keeping n leaves
// under the load ceiling.
func slotsFor(n int) int {
	c := 8
	for c*tLoadNum < n*tLoadDen {
		c <<= 1
	}
	return c
}

// tpart is one mask partition: all ternary entries sharing a mask
// pattern, indexed by masked value. maxPrio is an upper bound on the
// member priorities (exact after a build, possibly stale-high after
// persistent deletes — stale-high costs an extra probe, never a wrong
// verdict). Published partitions are immutable; edits replace a touched
// partition with a copy owning a fresh slot array.
type tpart struct {
	mask    []byte
	maxPrio int
	count   int // live entries across all leaves
	live    int // slots holding a real leaf
	dead    int // tombstoned slots
	slots   []tslot
}

// lookup returns the leaf stored under masked, or nil. Termination:
// the load ceiling keeps at least one never-occupied slot in every
// published array.
func (p *tpart) lookup(masked []byte, h uint64) *tleaf {
	m := uint64(len(p.slots) - 1)
	for i := h & m; ; i = (i + 1) & m {
		s := &p.slots[i]
		if s.leaf == nil {
			return nil
		}
		if s.tag == h && s.leaf != tombstone && bytes.Equal(s.leaf.key, masked) {
			return s.leaf
		}
	}
}

// slotIndex returns the index of the slot holding masked, or -1.
func (p *tpart) slotIndex(masked []byte, h uint64) int {
	m := uint64(len(p.slots) - 1)
	for i := h & m; ; i = (i + 1) & m {
		s := &p.slots[i]
		if s.leaf == nil {
			return -1
		}
		if s.tag == h && s.leaf != tombstone && bytes.Equal(s.leaf.key, masked) {
			return int(i)
		}
	}
}

// put stores a leaf under a key known to be absent, reusing the first
// tombstone or free slot on the probe path. Callers ensure capacity.
func (p *tpart) put(h uint64, lf *tleaf) {
	m := uint64(len(p.slots) - 1)
	for i := h & m; ; i = (i + 1) & m {
		s := &p.slots[i]
		if s.leaf == nil || s.leaf == tombstone {
			if s.leaf == tombstone {
				p.dead--
			}
			s.tag, s.leaf = h, lf
			p.live++
			return
		}
	}
}

// rehash rebuilds the slot array sized for minLeaves, purging
// tombstones. Only called on partitions the caller owns (fresh builds
// or copy-on-write copies).
func (p *tpart) rehash(minLeaves int) {
	old := p.slots
	p.slots = make([]tslot, slotsFor(minLeaves))
	p.live, p.dead = 0, 0
	for i := range old {
		if lf := old[i].leaf; lf != nil && lf != tombstone {
			p.put(old[i].tag, lf)
		}
	}
}

// insert adds e to an owned partition. ordered marks build-time inserts
// (entries arrive best-first, so duplicates append in place behind the
// leaf's better members); edit-time inserts splice a fresh leaf by
// canonical rank because the old leaf may be shared with a published
// generation.
func (p *tpart) insert(e *Entry, ordered bool) {
	h := thash(e.Value)
	if i := p.slotIndex(e.Value, h); i >= 0 {
		old := p.slots[i].leaf
		if ordered {
			old.es = append(old.es, e)
		} else {
			pos := len(old.es)
			for k, x := range old.es {
				if beats(e, x) {
					pos = k
					break
				}
			}
			es := make([]*Entry, 0, len(old.es)+1)
			es = append(es, old.es[:pos]...)
			es = append(es, e)
			es = append(es, old.es[pos:]...)
			p.slots[i].leaf = &tleaf{key: old.key, es: es}
		}
	} else {
		if (p.live+p.dead+1)*tLoadDen > len(p.slots)*tLoadNum {
			p.rehash(p.live + 1)
		}
		p.put(h, &tleaf{key: e.Value, es: []*Entry{e}})
	}
	p.count++
	if e.Priority > p.maxPrio {
		p.maxPrio = e.Priority
	}
}

// removeEntry deletes e (by pointer identity) from an owned partition.
func (p *tpart) removeEntry(e *Entry) {
	h := thash(e.Value)
	i := p.slotIndex(e.Value, h)
	if i < 0 {
		return
	}
	old := p.slots[i].leaf
	idx := -1
	for k, x := range old.es {
		if x == e {
			idx = k
			break
		}
	}
	if idx < 0 {
		return
	}
	if len(old.es) == 1 {
		p.slots[i].leaf = tombstone
		p.live--
		p.dead++
	} else {
		es := make([]*Entry, 0, len(old.es)-1)
		es = append(es, old.es[:idx]...)
		es = append(es, old.es[idx+1:]...)
		// Keep the leaf key aliased to a surviving entry's value so the
		// leaf never pins a deleted entry's backing array.
		p.slots[i].leaf = &tleaf{key: es[0].Value, es: es}
	}
	p.count--
}

// ternaryStore is one generation's ternary index: partitions ordered by
// descending maxPrio plus a mask lookup for delta application.
type ternaryStore struct {
	parts  []*tpart
	byMask map[string]*tpart
}

// buildTernaryStore indexes entries (already in canonical match order)
// from scratch.
func buildTernaryStore(entries []*Entry) *ternaryStore {
	ts := &ternaryStore{byMask: make(map[string]*tpart)}
	counts := make(map[string]int)
	for _, e := range entries {
		counts[string(e.Mask)]++
	}
	for _, e := range entries {
		mk := string(e.Mask)
		p := ts.byMask[mk]
		if p == nil {
			p = &tpart{mask: e.Mask, maxPrio: e.Priority,
				slots: make([]tslot, slotsFor(counts[mk]))}
			ts.byMask[mk] = p
			ts.parts = append(ts.parts, p)
		}
		p.insert(e, true)
	}
	ts.sortParts()
	return ts
}

func (ts *ternaryStore) sortParts() {
	sort.Slice(ts.parts, func(i, j int) bool {
		return ts.parts[i].maxPrio > ts.parts[j].maxPrio
	})
}

// tBatch is how many partitions find stages ahead: large enough to
// fill the CPU's outstanding-miss capacity, small enough to keep the
// scratch buffers on the stack.
const tBatch = 32

// find returns the best-matching entry for key, or nil. masked is
// caller scratch of key length. Exactness: the walk visits every
// partition whose maxPrio could still beat the best hit (the order is
// maxPrio-descending and the cut is strict), so any entry outranking
// the current best lives in a partition that is still visited.
//
// The walk is two-staged per batch of partitions: the first stage
// computes every partition's hash and loads its first probe slot with
// no data-dependent branches between iterations, so the slot loads —
// the only per-partition accesses that miss cache on large tables —
// issue concurrently instead of serializing one miss per partition.
// The second stage resolves each staged probe (now cached) and keeps
// the strict maxPrio early exit.
func (ts *ternaryStore) find(key, masked []byte) *Entry {
	if ts == nil {
		return nil
	}
	var (
		hit  *Entry
		hbuf [tBatch]uint64
		lbuf [tBatch]*tleaf
	)
	parts := ts.parts
	for base := 0; base < len(parts); base += tBatch {
		if hit != nil && parts[base].maxPrio < hit.Priority {
			break
		}
		n := len(parts) - base
		if n > tBatch {
			n = tBatch
		}
		for k := 0; k < n; k++ {
			p := parts[base+k]
			match.MaskBytes(masked, key, p.mask)
			h := thash(masked)
			hbuf[k] = h
			lbuf[k] = p.slots[h&uint64(len(p.slots)-1)].leaf
		}
		for k := 0; k < n; k++ {
			p := parts[base+k]
			if hit != nil && p.maxPrio < hit.Priority {
				return hit
			}
			if lbuf[k] == nil {
				continue
			}
			match.MaskBytes(masked, key, p.mask)
			if lf := p.lookup(masked, hbuf[k]); lf != nil {
				if e := lf.es[0]; beats(e, hit) {
					hit = e
				}
			}
		}
	}
	return hit
}

// edit returns a generation with removes taken out and adds put in.
// Edits are grouped by mask so each touched partition's slot array is
// copied exactly once per batch; untouched partitions stay shared with
// the receiver, which concurrent lookups keep reading undisturbed.
func (ts *ternaryStore) edit(removes, adds []*Entry) *ternaryStore {
	nts := ts.clone()
	touched := make(map[string]*tpart)
	owned := func(mask []byte) *tpart {
		mk := string(mask)
		if p := touched[mk]; p != nil {
			return p
		}
		var np *tpart
		if p := nts.byMask[mk]; p != nil {
			np = &tpart{mask: p.mask, maxPrio: p.maxPrio, count: p.count,
				live: p.live, dead: p.dead,
				slots: append([]tslot(nil), p.slots...)}
			nts.replacePart(p, np)
		} else {
			np = &tpart{mask: append([]byte(nil), mask...),
				slots: make([]tslot, slotsFor(1))}
			nts.byMask[mk] = np
			nts.parts = append(nts.parts, np)
		}
		touched[mk] = np
		return np
	}
	for _, e := range removes {
		owned(e.Mask).removeEntry(e)
	}
	for _, e := range adds {
		owned(e.Mask).insert(e, false)
	}
	for _, p := range touched {
		if p.count == 0 {
			nts.dropPart(p)
		} else if p.dead*4 > len(p.slots) {
			p.rehash(p.live)
		}
	}
	nts.sortParts()
	return nts
}

func (ts *ternaryStore) replacePart(old, nw *tpart) {
	ts.byMask[string(nw.mask)] = nw
	for i, p := range ts.parts {
		if p == old {
			ts.parts[i] = nw
			break
		}
	}
}

func (ts *ternaryStore) dropPart(old *tpart) {
	delete(ts.byMask, string(old.mask))
	for i, p := range ts.parts {
		if p == old {
			ts.parts = append(ts.parts[:i], ts.parts[i+1:]...)
			break
		}
	}
}

// clone copies the partition list and mask map (the partitions and
// their slot arrays stay shared) so edits never disturb the generation
// concurrent lookups are reading.
func (ts *ternaryStore) clone() *ternaryStore {
	if ts == nil {
		return &ternaryStore{byMask: make(map[string]*tpart)}
	}
	nts := &ternaryStore{
		parts:  append([]*tpart(nil), ts.parts...),
		byMask: make(map[string]*tpart, len(ts.byMask)),
	}
	for k, v := range ts.byMask {
		nts.byMask[k] = v
	}
	return nts
}
