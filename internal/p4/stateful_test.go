package p4

import (
	"math/rand"
	"strconv"
	"testing"
	"testing/quick"
	"time"
)

func TestRegisterBasics(t *testing.T) {
	r, err := NewRegister(4)
	if err != nil {
		t.Fatal(err)
	}
	if r.Size() != 4 {
		t.Fatalf("size %d", r.Size())
	}
	if got := r.Add(1, 5); got != 5 {
		t.Fatalf("Add = %d", got)
	}
	if got := r.Add(1, 2); got != 7 {
		t.Fatalf("Add = %d", got)
	}
	if r.Read(1) != 7 || r.Read(0) != 0 {
		t.Fatal("Read values wrong")
	}
	// Out-of-range indices are inert.
	if r.Add(99, 1) != 0 || r.Read(-1) != 0 {
		t.Fatal("out-of-range not inert")
	}
	r.Reset()
	if r.Read(1) != 0 {
		t.Fatal("Reset left state")
	}
	if _, err := NewRegister(0); err == nil {
		t.Fatal("accepted size 0")
	}
}

// TestSketchNeverUndercounts is the count-min invariant.
func TestSketchNeverUndercounts(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s, err := NewCountMinSketch(4, 64)
		if err != nil {
			return false
		}
		truth := make(map[string]uint64)
		for i := 0; i < 500; i++ {
			key := []byte("key-" + strconv.Itoa(rng.Intn(40)))
			truth[string(key)]++
			s.Update(key, 1)
		}
		for k, want := range truth {
			if s.Estimate([]byte(k)) < want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestSketchAccurateWhenSparse(t *testing.T) {
	s, err := NewCountMinSketch(4, 2048)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		key := []byte{byte(i)}
		for j := 0; j <= i; j++ {
			s.Update(key, 1)
		}
	}
	for i := 0; i < 10; i++ {
		if got := s.Estimate([]byte{byte(i)}); got != uint64(i+1) {
			t.Fatalf("estimate(%d) = %d, want %d", i, got, i+1)
		}
	}
	s.Reset()
	if s.Estimate([]byte{1}) != 0 {
		t.Fatal("Reset left counts")
	}
}

func TestSketchValidation(t *testing.T) {
	if _, err := NewCountMinSketch(0, 8); err == nil {
		t.Fatal("accepted depth 0")
	}
	if _, err := NewCountMinSketch(2, 0); err == nil {
		t.Fatal("accepted width 0")
	}
}

func TestRateGuardFlagsFloods(t *testing.T) {
	key := []FieldSpec{{Offset: 0, Width: 1}}
	g, err := NewRateGuard(key, 10, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	// Slow key: 5 packets/window, never flagged.
	for i := 0; i < 5; i++ {
		if g.Observe([]byte{1}, time.Duration(i)*100*time.Millisecond) {
			t.Fatal("slow key flagged")
		}
	}
	// Flood key: 50 packets in one window, flagged after the threshold.
	flagged := 0
	for i := 0; i < 50; i++ {
		if g.Observe([]byte{2}, time.Duration(i)*time.Millisecond) {
			flagged++
		}
	}
	if flagged != 40 {
		t.Fatalf("flagged %d of 50, want 40 (threshold 10)", flagged)
	}
	if g.Flagged() != 40 {
		t.Fatalf("Flagged() = %d", g.Flagged())
	}
}

func TestRateGuardWindowReset(t *testing.T) {
	key := []FieldSpec{{Offset: 0, Width: 1}}
	g, err := NewRateGuard(key, 3, 100*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	// 3 packets in window 1, then window rolls: counts must reset.
	for i := 0; i < 3; i++ {
		g.Observe([]byte{7}, time.Duration(i)*time.Millisecond)
	}
	if g.Observe([]byte{7}, 200*time.Millisecond) {
		t.Fatal("count survived window reset")
	}
}

func TestRateGuardValidation(t *testing.T) {
	key := []FieldSpec{{Offset: 0, Width: 1}}
	if _, err := NewRateGuard(key, 0, time.Second); err == nil {
		t.Fatal("accepted zero threshold")
	}
	if _, err := NewRateGuard(key, 1, 0); err == nil {
		t.Fatal("accepted zero window")
	}
}
