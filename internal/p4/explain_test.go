package p4

import (
	"math/rand"
	"testing"

	"p4guard/internal/packet"
)

// explainLookupAgree asserts Explain and Lookup agree on frame for every
// given frame against the table's current generation.
func explainLookupAgree(t *testing.T, tbl *Table, frames [][]byte) {
	t.Helper()
	for _, frame := range frames {
		st := tbl.state.Load()
		key := ExtractKey(frame, st.key)
		act, matched := tbl.Lookup(key)
		ex := tbl.Explain(frame)
		if ex.Action != act || ex.Matched != matched {
			t.Fatalf("frame %v: Explain (%+v,%v) != Lookup (%+v,%v)",
				frame, ex.Action, ex.Matched, act, matched)
		}
		if matched == ex.DefaultUsed {
			t.Fatalf("frame %v: matched=%v but DefaultUsed=%v", frame, matched, ex.DefaultUsed)
		}
		if matched && ex.Winner == nil {
			t.Fatalf("frame %v: hit without winner", frame)
		}
	}
}

// TestExplainLookupAgreementUnderTernaryChurn drives a ternary table
// through continuous insert/delete churn — including equal-priority
// entries in different mask groups, where a naive priority scan and the
// tuple-space search disagree — asserting after every mutation that
// Explain's action and match result equal Lookup's for a spread of keys.
func TestExplainLookupAgreementUnderTernaryChurn(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	tbl := NewTable("det", MatchTernary, key1(), 0, Action{Type: ActionAllow})
	frames := make([][]byte, 64)
	for i := range frames {
		frames[i] = []byte{byte(i * 4)}
	}
	masks := []byte{0xff, 0xf0, 0x80, 0x00, 0xc0}
	var ids []uint64
	for round := 0; round < 300; round++ {
		if len(ids) > 0 && rng.Intn(3) == 0 {
			i := rng.Intn(len(ids))
			if err := tbl.Delete(ids[i]); err != nil {
				t.Fatal(err)
			}
			ids = append(ids[:i], ids[i+1:]...)
		} else {
			m := masks[rng.Intn(len(masks))]
			e := Entry{
				// Priority drawn from a small set forces equal-priority
				// entries across mask groups.
				Priority: rng.Intn(4),
				Value:    []byte{byte(rng.Intn(256)) & m},
				Mask:     []byte{m},
				Action:   Action{Type: ActionDrop, Class: 1 + rng.Intn(3)},
			}
			id, err := tbl.Insert(e)
			if err != nil {
				t.Fatal(err)
			}
			ids = append(ids, id)
		}
		explainLookupAgree(t, tbl, frames)
	}
}

// TestExplainLookupAgreementAllKinds covers exact, LPM, and range tables
// with a churn of inserts/deletes and random keys.
func TestExplainLookupAgreementAllKinds(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	specs := []FieldSpec{{Name: "b", Offset: 0, Width: 2}}
	frames := make([][]byte, 200)
	for i := range frames {
		frames[i] = []byte{byte(rng.Intn(256)), byte(rng.Intn(256))}
	}
	mk := func(kind MatchKind) *Table {
		return NewTable("t-"+kind.String(), kind, specs, 0, Action{Type: ActionNop})
	}
	insert := func(tbl *Table, kind MatchKind) error {
		e := Entry{Priority: rng.Intn(4), Action: Action{Type: ActionSetClass, Class: 1 + rng.Intn(3)}}
		switch kind {
		case MatchExact:
			e.Value = []byte{byte(rng.Intn(256)), byte(rng.Intn(256))}
		case MatchLPM:
			e.Value = []byte{byte(rng.Intn(256)), byte(rng.Intn(256))}
			e.PrefixLen = rng.Intn(17)
		case MatchRange:
			lo0, hi0 := byte(rng.Intn(256)), byte(rng.Intn(256))
			if lo0 > hi0 {
				lo0, hi0 = hi0, lo0
			}
			lo1, hi1 := byte(rng.Intn(256)), byte(rng.Intn(256))
			if lo1 > hi1 {
				lo1, hi1 = hi1, lo1
			}
			e.Lo, e.Hi = []byte{lo0, lo1}, []byte{hi0, hi1}
		}
		_, err := tbl.Insert(e)
		return err
	}
	for _, kind := range []MatchKind{MatchExact, MatchLPM, MatchRange} {
		t.Run(kind.String(), func(t *testing.T) {
			tbl := mk(kind)
			for round := 0; round < 40; round++ {
				if err := insert(tbl, kind); err != nil {
					t.Fatal(err)
				}
				explainLookupAgree(t, tbl, frames)
			}
		})
	}
}

// TestPipelineExplainMatchesRunTables asserts the pipeline-level Explain
// verdict equals RunTables' verdict, and that Explain queues no digests.
func TestPipelineExplainMatchesRunTables(t *testing.T) {
	p := NewPipeline(8)
	det := NewTable("detector", MatchTernary, key1(), 0, Action{Type: ActionDigest})
	if _, err := det.Insert(Entry{
		Priority: 5, Value: []byte{0x80}, Mask: []byte{0x80},
		Action: Action{Type: ActionDrop, Class: 2},
	}); err != nil {
		t.Fatal(err)
	}
	if err := p.AddTable(det); err != nil {
		t.Fatal(err)
	}
	for b := 0; b < 256; b++ {
		pkt := &packet.Packet{Bytes: []byte{byte(b)}}
		want := p.RunTables(p.TableSnapshot(), pkt)
		got := p.Explain(pkt)
		if got.Verdict != want {
			t.Fatalf("byte %#02x: Explain verdict %+v != RunTables %+v", b, got.Verdict, want)
		}
		if len(got.Tables) != 1 {
			t.Fatalf("byte %#02x: %d table explains", b, len(got.Tables))
		}
	}
	// RunTables queued digests for misses; Explain must not have added
	// any beyond those (queue capacity 8, misses ≥ 8, so a leaking
	// Explain would have overflowed identically — compare counts).
	queued := len(p.DrainDigests(1024))
	if queued > 8 {
		t.Fatalf("digest queue holds %d > cap 8", queued)
	}
	before := len(p.DrainDigests(1024))
	_ = p.Explain(&packet.Packet{Bytes: []byte{0x00}})
	if after := len(p.DrainDigests(1024)); after != before {
		t.Fatalf("Explain queued a digest (%d -> %d)", before, after)
	}
}
