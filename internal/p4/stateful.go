package p4

import (
	"fmt"
	"hash/fnv"
	"sync"
	"time"
)

// Register is a P4-style stateful register array of unsigned counters.
type Register struct {
	mu    sync.Mutex
	cells []uint64
}

// NewRegister allocates a register array with size cells.
func NewRegister(size int) (*Register, error) {
	if size <= 0 {
		return nil, fmt.Errorf("p4: register size %d", size)
	}
	return &Register{cells: make([]uint64, size)}, nil
}

// Size returns the cell count.
func (r *Register) Size() int { return len(r.cells) }

// Read returns cell i (0 when out of range, matching hardware saturating
// semantics for bad indices).
func (r *Register) Read(i int) uint64 {
	if i < 0 || i >= len(r.cells) {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.cells[i]
}

// Add increments cell i by delta and returns the new value.
func (r *Register) Add(i int, delta uint64) uint64 {
	if i < 0 || i >= len(r.cells) {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.cells[i] += delta
	return r.cells[i]
}

// Reset zeroes every cell.
func (r *Register) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	for i := range r.cells {
		r.cells[i] = 0
	}
}

// CountMinSketch approximates per-key counts in fixed memory — the
// standard data-plane structure for heavy-hitter detection (d hash rows of
// w counters; estimates never undercount).
type CountMinSketch struct {
	mu    sync.Mutex
	depth int
	width int
	rows  [][]uint64
	seeds []uint64
}

// NewCountMinSketch allocates a depth×width sketch.
func NewCountMinSketch(depth, width int) (*CountMinSketch, error) {
	if depth <= 0 || width <= 0 {
		return nil, fmt.Errorf("p4: sketch dims %dx%d", depth, width)
	}
	s := &CountMinSketch{
		depth: depth,
		width: width,
		rows:  make([][]uint64, depth),
		seeds: make([]uint64, depth),
	}
	for i := range s.rows {
		s.rows[i] = make([]uint64, width)
		s.seeds[i] = uint64(i)*0x9e3779b97f4a7c15 + 0x85ebca6b
	}
	return s, nil
}

func (s *CountMinSketch) index(row int, key []byte) int {
	h := fnv.New64a()
	var seed [8]byte
	v := s.seeds[row]
	for i := 0; i < 8; i++ {
		seed[i] = byte(v >> (8 * i))
	}
	_, _ = h.Write(seed[:])
	_, _ = h.Write(key)
	return int(h.Sum64() % uint64(s.width))
}

// Update adds delta to the key and returns the new (over-)estimate.
func (s *CountMinSketch) Update(key []byte, delta uint64) uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	est := ^uint64(0)
	for row := 0; row < s.depth; row++ {
		i := s.index(row, key)
		s.rows[row][i] += delta
		if s.rows[row][i] < est {
			est = s.rows[row][i]
		}
	}
	return est
}

// Estimate returns the key's count estimate (never an undercount).
func (s *CountMinSketch) Estimate(key []byte) uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	est := ^uint64(0)
	for row := 0; row < s.depth; row++ {
		if c := s.rows[row][s.index(row, key)]; c < est {
			est = c
		}
	}
	return est
}

// Reset zeroes the sketch.
func (s *CountMinSketch) Reset() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, row := range s.rows {
		for i := range row {
			row[i] = 0
		}
	}
}

// RateGuard is a stateful heavy-hitter stage: it counts packets per match
// key in a count-min sketch over sliding windows and reports keys whose
// per-window count exceeds the threshold. It models the stateful half of
// data-plane security programs (rate limiting, scan/flood suppression)
// that complements the learned match–action rules.
type RateGuard struct {
	Key       []FieldSpec
	Threshold uint64
	Window    time.Duration

	mu          sync.Mutex
	sketch      *CountMinSketch
	windowStart time.Duration
	flagged     uint64
}

// NewRateGuard builds a guard with a depth-4, width-1024 sketch.
func NewRateGuard(key []FieldSpec, threshold uint64, window time.Duration) (*RateGuard, error) {
	if threshold == 0 {
		return nil, fmt.Errorf("p4: zero rate threshold")
	}
	if window <= 0 {
		return nil, fmt.Errorf("p4: non-positive window")
	}
	sketch, err := NewCountMinSketch(4, 1024)
	if err != nil {
		return nil, err
	}
	return &RateGuard{Key: key, Threshold: threshold, Window: window, sketch: sketch}, nil
}

// Observe folds one packet (frame bytes + trace timestamp) into the guard
// and reports whether its key is over threshold in the current window.
func (g *RateGuard) Observe(frame []byte, at time.Duration) bool {
	key := ExtractKey(frame, g.Key)
	g.mu.Lock()
	defer g.mu.Unlock()
	if at-g.windowStart >= g.Window {
		g.sketch.Reset()
		g.windowStart = at
	}
	est := g.sketch.Update(key, 1)
	if est > g.Threshold {
		g.flagged++
		return true
	}
	return false
}

// Flagged returns the number of over-threshold observations.
func (g *RateGuard) Flagged() uint64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.flagged
}
