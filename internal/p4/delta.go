package p4

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"sort"
)

// Incremental reprogramming. A Delta edits the canonical programmed
// entry list (Table.Replace's wire-order list) in place: deletions and
// priority moves address base entries by canonical index, adds and
// moves carry the index (Order) they occupy in the resulting program.
// Surviving entries fill the remaining slots in base order, so applying
// a delta reproduces exactly the program a full Replace of the new
// entry list would install — while sharing every surviving entry
// (counters included), preserving reactive Inserts, and updating only
// the ternary-store partitions the delta touches.
//
// A delta names its base with (BaseCount, BaseHash); Apply refuses a
// delta whose base does not match the installed program (ErrDeltaBase),
// which is the signal for the control plane to fall back to a full
// swap.

// ErrDeltaBase reports a delta aimed at a different base program than
// the one installed.
var ErrDeltaBase = errors.New("delta base mismatch")

// DeltaMove reprioritizes one base entry: the entry at canonical index
// Base is re-created with Priority at index Order of the new program.
// (The re-created entry gets a fresh ID and fresh counters; a move is
// a delete+add that happens to reuse the match fields.)
type DeltaMove struct {
	Base     int
	Priority int
	Order    int
}

// DeltaAdd inserts a new entry at canonical index Order of the new
// program.
type DeltaAdd struct {
	Entry Entry
	Order int
}

// Delta is an incremental edit of a table's canonical program.
type Delta struct {
	// BaseCount and BaseHash identify the program the delta was computed
	// against (see Table.ProgramSignature). BaseHash 0 skips the hash
	// check (count is always checked).
	BaseCount int
	BaseHash  uint64

	Deletes []int
	Moves   []DeltaMove
	Adds    []DeltaAdd
}

// Size is the number of edit operations the delta carries.
func (d *Delta) Size() int { return len(d.Deletes) + len(d.Moves) + len(d.Adds) }

// Empty reports a no-op delta.
func (d *Delta) Empty() bool { return d.Size() == 0 }

// NewCount is the entry count of the program the delta produces.
func (d *Delta) NewCount() int { return d.BaseCount - len(d.Deletes) + len(d.Adds) }

// HashEntry hashes one entry's match fields (ID and counters excluded)
// with FNV-1a. Program signatures XOR per-entry hashes, so they are
// order-independent and incrementally maintainable: controller and
// switch compute identical signatures for identical entry multisets
// without exchanging the entries.
func HashEntry(e *Entry) uint64 {
	h := fnv.New64a()
	var num [8]byte
	binary.BigEndian.PutUint64(num[:], uint64(int64(e.Priority)))
	h.Write(num[:])
	binary.BigEndian.PutUint64(num[:], uint64(int64(e.PrefixLen)))
	h.Write(num[:])
	binary.BigEndian.PutUint64(num[:], uint64(int64(e.Action.Type)))
	h.Write(num[:])
	binary.BigEndian.PutUint64(num[:], uint64(int64(e.Action.Class)))
	h.Write(num[:])
	for _, b := range [][]byte{e.Value, e.Mask, e.Lo, e.Hi} {
		binary.BigEndian.PutUint64(num[:], uint64(len(b)))
		h.Write(num[:])
		h.Write(b)
	}
	return h.Sum64()
}

// HashEntries is the order-independent signature of an entry list: the
// XOR of every entry's HashEntry.
func HashEntries(entries []Entry) uint64 {
	var h uint64
	for i := range entries {
		h ^= HashEntry(&entries[i])
	}
	return h
}

// matchFieldsKey is an entry's identity for delta matching: every match
// field except priority (so a priority change pairs up as a move).
func matchFieldsKey(e *Entry) string {
	b := make([]byte, 0, 24+len(e.Value)+len(e.Mask)+len(e.Lo)+len(e.Hi))
	var num [8]byte
	binary.BigEndian.PutUint64(num[:], uint64(int64(e.PrefixLen)))
	b = append(b, num[:]...)
	b = append(b, byte(e.Action.Type))
	binary.BigEndian.PutUint64(num[:], uint64(int64(e.Action.Class)))
	b = append(b, num[:]...)
	for _, f := range [][]byte{e.Value, e.Mask, e.Lo, e.Hi} {
		binary.BigEndian.PutUint64(num[:], uint64(len(f)))
		b = append(b, num[:]...)
		b = append(b, f...)
	}
	return string(b)
}

// ComputeDelta diffs two canonical programs, pairing entries by match
// fields. ok is false when the diff cannot be expressed as a valid
// delta — duplicate match fields on either side, or surviving entries
// whose relative order changed — in which case the caller must fall
// back to a full Replace. An ok delta applied to old yields a program
// entry-for-entry identical to new (IDs aside).
func ComputeDelta(old, new []Entry) (Delta, bool) {
	d := Delta{BaseCount: len(old), BaseHash: HashEntries(old)}
	oldIdx := make(map[string]int, len(old))
	for i := range old {
		k := matchFieldsKey(&old[i])
		if _, dup := oldIdx[k]; dup {
			return Delta{}, false
		}
		oldIdx[k] = i
	}
	matched := make([]bool, len(old))
	// Surviving (unmoved) pairs must keep their relative base order —
	// the splice places survivors in base order, so a reordering diff
	// cannot round-trip.
	lastSurvivor := -1
	seenNew := make(map[string]bool, len(new))
	for ni := range new {
		k := matchFieldsKey(&new[ni])
		if seenNew[k] {
			return Delta{}, false
		}
		seenNew[k] = true
		oi, found := oldIdx[k]
		if !found {
			d.Adds = append(d.Adds, DeltaAdd{Entry: new[ni], Order: ni})
			continue
		}
		matched[oi] = true
		if old[oi].Priority != new[ni].Priority {
			d.Moves = append(d.Moves, DeltaMove{Base: oi, Priority: new[ni].Priority, Order: ni})
			continue
		}
		if oi < lastSurvivor {
			return Delta{}, false
		}
		lastSurvivor = oi
	}
	for i := range old {
		if !matched[i] {
			d.Deletes = append(d.Deletes, i)
		}
	}
	return d, true
}

// Apply edits the canonical program incrementally and atomically: the
// new lookup generation is published in one store, with surviving
// entries (and their counters), reactive Inserts, and — for ternary
// tables — every untouched store partition shared with the previous
// generation. On any error the table is unchanged.
//
// For ternary tables the cost is O(survivors) pointer moves plus
// O(edits · trie depth) index work; no O(n log n) re-sort and no full
// index rebuild. Other kinds apply the same program edit but rebuild
// their index (range tables must recompile the bitset index), so the
// win there is wire- and validation-level only.
func (t *Table) Apply(d Delta) error {
	t.mu.Lock()
	defer t.mu.Unlock()

	if d.BaseCount != len(t.prog) {
		return fmt.Errorf("table %s: base count %d != installed %d: %w",
			t.Name, d.BaseCount, len(t.prog), ErrDeltaBase)
	}
	if d.BaseHash != 0 && d.BaseHash != t.progHash {
		return fmt.Errorf("table %s: base hash %#x != installed %#x: %w",
			t.Name, d.BaseHash, t.progHash, ErrDeltaBase)
	}
	newCount := d.NewCount()
	if newCount < 0 {
		return fmt.Errorf("table %s: delta deletes more than base: %w", t.Name, ErrBadEntry)
	}
	if t.MaxEntries > 0 && newCount+len(t.inserted) > t.MaxEntries {
		return fmt.Errorf("table %s (%d entries): %w", t.Name, newCount+len(t.inserted), ErrTableFull)
	}
	w := t.width()
	for i := range d.Adds {
		if err := t.validate(&d.Adds[i].Entry, w); err != nil {
			return fmt.Errorf("table %s: add %d: %w", t.Name, i, err)
		}
	}
	// Removed base slots (deletes + move sources) must be unique and in
	// range; target orders must be unique and in range. A dense bitmap
	// beats a map here: the splice and removed-entry sweeps below probe
	// it once per base slot.
	removed := make([]bool, d.BaseCount)
	for _, i := range d.Deletes {
		if i < 0 || i >= d.BaseCount || removed[i] {
			return fmt.Errorf("table %s: delete index %d: %w", t.Name, i, ErrBadEntry)
		}
		removed[i] = true
	}
	for _, m := range d.Moves {
		if m.Base < 0 || m.Base >= d.BaseCount || removed[m.Base] {
			return fmt.Errorf("table %s: move base %d: %w", t.Name, m.Base, ErrBadEntry)
		}
		removed[m.Base] = true
	}
	// Newcomers (moves + adds) in target order, so IDs are assigned in
	// canonical order and priority ties resolve exactly as a full
	// Replace of the new program would.
	type newcomer struct {
		e     *Entry
		order int
	}
	newcomers := make([]newcomer, 0, len(d.Moves)+len(d.Adds))
	for _, m := range d.Moves {
		// Field-by-field copy: a whole-struct copy would read the live
		// atomic counters non-atomically under concurrent forwarding.
		src := t.prog[m.Base]
		cp := Entry{
			Priority: m.Priority,
			Value:    src.Value, Mask: src.Mask, PrefixLen: src.PrefixLen,
			Lo: src.Lo, Hi: src.Hi, Action: src.Action,
		}
		newcomers = append(newcomers, newcomer{e: &cp, order: m.Order})
	}
	for i := range d.Adds {
		cp := d.Adds[i].Entry
		newcomers = append(newcomers, newcomer{e: &cp, order: d.Adds[i].Order})
	}
	sort.Slice(newcomers, func(i, j int) bool { return newcomers[i].order < newcomers[j].order })

	// Splice: newcomers claim their target slots, survivors fill the
	// rest in base order.
	newProg := make([]*Entry, newCount)
	for i := range newcomers {
		o := newcomers[i].order
		if o < 0 || o >= newCount || newProg[o] != nil {
			return fmt.Errorf("table %s: order %d: %w", t.Name, o, ErrBadEntry)
		}
		t.nextID++
		newcomers[i].e.ID = t.nextID
		newProg[o] = newcomers[i].e
	}
	si := 0
	removedEntries := make([]*Entry, 0, len(d.Deletes)+len(d.Moves))
	for i := 0; i < newCount; i++ {
		if newProg[i] != nil {
			continue
		}
		for si < len(t.prog) && removed[si] {
			si++
		}
		if si >= len(t.prog) {
			return fmt.Errorf("table %s: delta survivor underflow: %w", t.Name, ErrBadEntry)
		}
		newProg[i] = t.prog[si]
		si++
	}
	for i, e := range t.prog {
		if removed[i] {
			removedEntries = append(removedEntries, e)
		}
	}

	// Newcomers get canonical-order keys interleaving exactly as a full
	// Replace of the new program would order them: each maximal run of
	// newcomers divides the ord gap between its surviving neighbours
	// evenly. Survivor ords are immutable and base-ordered, so they are
	// strictly increasing across newProg already, and because newcomers
	// is sorted by target order, each maximal run of consecutive orders
	// is exactly one gap to split — O(edits), never a walk over the
	// whole program. A gap too narrow to split (dozens of deltas stacked
	// between the same two survivors with no intervening Replace to
	// re-gap the space) is refused as a base problem; the caller falls
	// back to a full swap.
	for i := 0; i < len(newcomers); {
		j := i
		for j+1 < len(newcomers) && newcomers[j+1].order == newcomers[j].order+1 {
			j++
		}
		start, end := newcomers[i].order, newcomers[j].order
		left := uint64(0)
		if start > 0 {
			left = newProg[start-1].ord
		}
		right := insertedOrdBase
		if end+1 < newCount {
			right = newProg[end+1].ord
		}
		step := (right - left) / uint64(j-i+2)
		if step == 0 {
			return fmt.Errorf("table %s: canonical order space exhausted; full replace required: %w",
				t.Name, ErrDeltaBase)
		}
		for k := i; k <= j; k++ {
			left += step
			newProg[newcomers[k].order].ord = left
		}
		i = j + 1
	}

	// Commit: incremental hash, then the index. Ternary tables get the
	// incremental merge + partition-sharing path; everything else
	// reindexes from scratch.
	hash := t.progHash
	for _, e := range removedEntries {
		hash ^= HashEntry(e)
	}
	for i := range newcomers {
		hash ^= HashEntry(newcomers[i].e)
	}
	prev := t.state.Load()
	t.prog = newProg
	t.progHash = hash
	if t.Kind == MatchTernary {
		added := make([]*Entry, len(newcomers))
		for i := range newcomers {
			added[i] = newcomers[i].e
		}
		t.publishTernaryDelta(prev, removedEntries, added)
	} else {
		t.reindex()
	}
	return nil
}

// publishTernaryDelta builds the next ternary generation from the
// previous one: the sorted entry list is a linear merge (survivors keep
// their order; newcomers are merge-inserted by canonical rank) and the
// store is the previous store with only the touched partitions
// replaced. Callers hold t.mu and have already updated t.prog.
func (t *Table) publishTernaryDelta(prev *lookupState, removedEntries, added []*Entry) {
	// One sweep over the previous sorted order does both edits: removed
	// entries are dropped with a two-pointer match (both lists are in
	// canonical match order and (priority, ord) is unique per entry, so
	// no hashing is needed) and newcomers land at pre-computed insertion
	// indexes. Binary-searching each newcomer's rank up front keeps the
	// million-element sweep free of entry dereferences — it is pointer
	// compares and pointer copies only, O(edits · log n + n) instead of
	// O(n) rank comparisons each costing a cache miss.
	rm := append([]*Entry(nil), removedEntries...)
	sortByPriority(rm)
	add := append([]*Entry(nil), added...)
	sortByPriority(add)
	inspos := make([]int, len(add))
	for k, a := range add {
		inspos[k] = sort.Search(len(prev.entries), func(i int) bool { return beats(a, prev.entries[i]) })
	}
	merged := make([]*Entry, 0, len(prev.entries)-len(rm)+len(add))
	ri, j := 0, 0
	for i, e := range prev.entries {
		for j < len(add) && inspos[j] == i {
			merged = append(merged, add[j])
			j++
		}
		if ri < len(rm) && rm[ri] == e {
			ri++
			continue
		}
		merged = append(merged, e)
	}
	merged = append(merged, add[j:]...)

	ts := prev.tstore.edit(removedEntries, added)

	st := &lookupState{
		kind:    t.Kind,
		key:     t.Key,
		width:   t.width(),
		def:     t.DefaultAction,
		entries: merged,
		tstore:  ts,
	}
	t.state.Store(st)
}
