package flowstats

import (
	"math"
	"testing"
	"time"

	"p4guard/internal/packet"
)

func tcpFrame(sip, dip [4]byte, sport, dport uint16, flags byte) []byte {
	eth := packet.Ethernet{EtherType: packet.EtherTypeIPv4}
	ip := packet.IPv4{TTL: 64, Protocol: packet.ProtoTCP, Src: sip, Dst: dip}
	tcp := packet.TCP{SrcPort: sport, DstPort: dport, Flags: flags}
	b := eth.Marshal(nil)
	b = ip.Marshal(b, packet.TCPLen)
	return tcp.Marshal(b)
}

func TestKeyDirectionSymmetric(t *testing.T) {
	fwd := &packet.Packet{Link: packet.LinkEthernet,
		Bytes: tcpFrame([4]byte{10, 0, 0, 1}, [4]byte{10, 0, 0, 2}, 1000, 80, packet.TCPSyn)}
	rev := &packet.Packet{Link: packet.LinkEthernet,
		Bytes: tcpFrame([4]byte{10, 0, 0, 2}, [4]byte{10, 0, 0, 1}, 80, 1000, packet.TCPAck)}
	kf, ok1 := KeyFor(fwd)
	kr, ok2 := KeyFor(rev)
	if !ok1 || !ok2 {
		t.Fatal("keying failed")
	}
	if kf != kr {
		t.Fatalf("forward %v != reverse %v", kf, kr)
	}
}

func TestDistinctFlowsDistinctKeys(t *testing.T) {
	a := &packet.Packet{Link: packet.LinkEthernet,
		Bytes: tcpFrame([4]byte{10, 0, 0, 1}, [4]byte{10, 0, 0, 2}, 1000, 80, 0)}
	b := &packet.Packet{Link: packet.LinkEthernet,
		Bytes: tcpFrame([4]byte{10, 0, 0, 1}, [4]byte{10, 0, 0, 2}, 1001, 80, 0)}
	ka, _ := KeyFor(a)
	kb, _ := KeyFor(b)
	if ka == kb {
		t.Fatal("different source ports share a key")
	}
}

func TestKeyForLowPowerLinks(t *testing.T) {
	mac := packet.IEEE802154{FrameType: packet.FrameData, PANID: 5, Dst: 1, Src: 2}
	zp := &packet.Packet{Link: packet.LinkIEEE802154, Bytes: mac.Marshal(nil)}
	if _, ok := KeyFor(zp); !ok {
		t.Fatal("zigbee frame not keyed")
	}
	rev := packet.IEEE802154{FrameType: packet.FrameData, PANID: 5, Dst: 2, Src: 1}
	zr := &packet.Packet{Link: packet.LinkIEEE802154, Bytes: rev.Marshal(nil)}
	k1, _ := KeyFor(zp)
	k2, _ := KeyFor(zr)
	if k1 != k2 {
		t.Fatal("zigbee keys not direction symmetric")
	}

	ll := packet.BLELinkLayer{AccessAddress: packet.BLEAdvAccessAddress, PDUType: packet.BLEAdvInd,
		AdvAddr: packet.MAC{1, 2, 3, 4, 5, 6}}
	bp := &packet.Packet{Link: packet.LinkBLE, Bytes: ll.Marshal(nil)}
	if _, ok := KeyFor(bp); !ok {
		t.Fatal("ble frame not keyed")
	}
	if _, ok := KeyFor(&packet.Packet{Link: packet.LinkBLE, Bytes: []byte{1}}); ok {
		t.Fatal("truncated ble frame keyed")
	}
}

func TestARPKeyedByMAC(t *testing.T) {
	eth := packet.Ethernet{EtherType: packet.EtherTypeARP,
		Src: packet.MAC{1, 1, 1, 1, 1, 1}, Dst: packet.MAC{2, 2, 2, 2, 2, 2}}
	a := packet.ARP{Op: packet.ARPRequest}
	frame := a.Marshal(eth.Marshal(nil))
	if _, ok := KeyFor(&packet.Packet{Link: packet.LinkEthernet, Bytes: frame}); !ok {
		t.Fatal("ARP frame not keyed")
	}
}

func TestTrackerFeatures(t *testing.T) {
	tr := NewTracker()
	sip, dip := [4]byte{10, 0, 0, 1}, [4]byte{10, 0, 0, 2}
	var feats []float64
	for i := 0; i < 5; i++ {
		pkt := &packet.Packet{
			Link:  packet.LinkEthernet,
			Time:  time.Duration(i) * 10 * time.Millisecond,
			Bytes: tcpFrame(sip, dip, 1000, 80, packet.TCPSyn),
		}
		feats = tr.Update(pkt)
	}
	if len(feats) != FeatureWidth {
		t.Fatalf("feature width %d", len(feats))
	}
	if feats[0] != 5 {
		t.Fatalf("pkt_count = %v", feats[0])
	}
	if math.Abs(feats[2]-0.04) > 1e-9 {
		t.Fatalf("duration = %v, want 0.04", feats[2])
	}
	if math.Abs(feats[3]-10) > 1e-9 {
		t.Fatalf("mean IAT = %v ms, want 10", feats[3])
	}
	if math.Abs(feats[4]) > 1e-9 {
		t.Fatalf("std IAT = %v, want 0 for uniform spacing", feats[4])
	}
	if math.Abs(feats[8]-1.0) > 1e-9 {
		t.Fatalf("syn_frac = %v, want 1", feats[8])
	}
	if tr.Flows() != 1 {
		t.Fatalf("%d flows", tr.Flows())
	}
}

func TestTrackerSeparatesFlows(t *testing.T) {
	tr := NewTracker()
	for i := 0; i < 3; i++ {
		tr.Update(&packet.Packet{Link: packet.LinkEthernet,
			Bytes: tcpFrame([4]byte{10, 0, 0, 1}, [4]byte{10, 0, 0, 2}, uint16(1000+i), 80, 0)})
	}
	if tr.Flows() != 3 {
		t.Fatalf("%d flows, want 3", tr.Flows())
	}
}

func TestUnkeyablePacketsShareCatchAll(t *testing.T) {
	tr := NewTracker()
	f1 := tr.Update(&packet.Packet{Link: packet.LinkEthernet, Bytes: []byte{1, 2}})
	f2 := tr.Update(&packet.Packet{Link: packet.LinkEthernet, Bytes: []byte{3}})
	if f2[0] != 2 {
		t.Fatalf("catch-all flow count = %v, want 2", f2[0])
	}
	_ = f1
}

func TestFeatureNames(t *testing.T) {
	if len(FeatureNames()) != FeatureWidth {
		t.Fatalf("%d names for width %d", len(FeatureNames()), FeatureWidth)
	}
}

func TestIsSynDetection(t *testing.T) {
	syn := &packet.Packet{Link: packet.LinkEthernet,
		Bytes: tcpFrame([4]byte{1, 1, 1, 1}, [4]byte{2, 2, 2, 2}, 1, 2, packet.TCPSyn)}
	if !isSyn(syn) {
		t.Fatal("SYN not detected")
	}
	synack := &packet.Packet{Link: packet.LinkEthernet,
		Bytes: tcpFrame([4]byte{1, 1, 1, 1}, [4]byte{2, 2, 2, 2}, 1, 2, packet.TCPSyn|packet.TCPAck)}
	if isSyn(synack) {
		t.Fatal("SYN-ACK misdetected as SYN")
	}
}
