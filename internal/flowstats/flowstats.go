// Package flowstats reassembles packets into flows and computes the
// statistical features classical flow-based IDS baselines consume: packet
// and byte counts, inter-arrival statistics, length statistics, rates, and
// TCP-flag fractions. Flow keys are direction-symmetric so both halves of a
// conversation share state.
package flowstats

import (
	"math"
	"time"

	"p4guard/internal/packet"
)

// FeatureWidth is the width of the feature vector Update returns.
const FeatureWidth = 10

// FeatureNames labels the vector components, in order.
func FeatureNames() []string {
	return []string{
		"pkt_count", "byte_count", "duration_s", "mean_iat_ms", "std_iat_ms",
		"mean_len", "std_len", "pps", "syn_frac", "small_pkt_frac",
	}
}

// FlowKey identifies a bidirectional conversation. For IP traffic it is the
// canonical 5-tuple; for 802.15.4 the PAN and short addresses; for BLE the
// advertiser address and PDU type.
type FlowKey struct {
	Proto byte
	A, B  uint64 // canonical endpoint identifiers, A <= B
}

// KeyFor extracts the flow key from a frame. ok is false when the frame
// does not decode far enough to key it; such packets form per-link
// catch-all flows.
func KeyFor(pkt *packet.Packet) (FlowKey, bool) {
	switch pkt.Link {
	case packet.LinkEthernet:
		return ethernetKey(pkt.Bytes)
	case packet.LinkIEEE802154:
		var mac packet.IEEE802154
		if _, err := mac.Unmarshal(pkt.Bytes); err != nil {
			return FlowKey{}, false
		}
		a := uint64(mac.PANID)<<16 | uint64(mac.Src)
		b := uint64(mac.PANID)<<16 | uint64(mac.Dst)
		return canonical(mac.FrameType, a, b), true
	case packet.LinkBLE:
		var ll packet.BLELinkLayer
		if _, err := ll.Unmarshal(pkt.Bytes); err != nil {
			return FlowKey{}, false
		}
		var addr uint64
		for _, b := range ll.AdvAddr {
			addr = addr<<8 | uint64(b)
		}
		return FlowKey{Proto: ll.PDUType, A: addr, B: 0}, true
	default:
		return FlowKey{}, false
	}
}

func ethernetKey(frame []byte) (FlowKey, bool) {
	var eth packet.Ethernet
	n, err := eth.Unmarshal(frame)
	if err != nil {
		return FlowKey{}, false
	}
	if eth.EtherType != packet.EtherTypeIPv4 {
		// Key non-IP (e.g. ARP) by MAC pair.
		var a, b uint64
		for _, v := range eth.Src {
			a = a<<8 | uint64(v)
		}
		for _, v := range eth.Dst {
			b = b<<8 | uint64(v)
		}
		return canonical(0, a, b), true
	}
	var ip packet.IPv4
	m, err := ip.Unmarshal(frame[n:])
	if err != nil {
		return FlowKey{}, false
	}
	var sport, dport uint16
	switch ip.Protocol {
	case packet.ProtoTCP:
		var tcp packet.TCP
		if _, err := tcp.Unmarshal(frame[n+m:]); err == nil {
			sport, dport = tcp.SrcPort, tcp.DstPort
		}
	case packet.ProtoUDP:
		var udp packet.UDP
		if _, err := udp.Unmarshal(frame[n+m:]); err == nil {
			sport, dport = udp.SrcPort, udp.DstPort
		}
	}
	a := endpointID(ip.Src, sport)
	b := endpointID(ip.Dst, dport)
	return canonical(ip.Protocol, a, b), true
}

func endpointID(ip [4]byte, port uint16) uint64 {
	var v uint64
	for _, b := range ip {
		v = v<<8 | uint64(b)
	}
	return v<<16 | uint64(port)
}

// canonical orders the endpoints so both directions map to one key.
func canonical(proto byte, a, b uint64) FlowKey {
	if a > b {
		a, b = b, a
	}
	return FlowKey{Proto: proto, A: a, B: b}
}

// flowState accumulates running statistics (Welford for variances).
type flowState struct {
	count     int
	bytes     int
	first     time.Duration
	last      time.Duration
	iatMean   float64
	iatM2     float64
	lenMean   float64
	lenM2     float64
	synCount  int
	smallPkts int
}

// Tracker maintains per-flow state across a trace.
type Tracker struct {
	flows map[FlowKey]*flowState
}

// NewTracker returns an empty tracker.
func NewTracker() *Tracker {
	return &Tracker{flows: make(map[FlowKey]*flowState)}
}

// Flows returns the number of distinct flows seen.
func (t *Tracker) Flows() int { return len(t.flows) }

// Update folds the packet into its flow and returns the flow's feature
// vector as of this packet. Packets must be fed in time order for
// inter-arrival features to be meaningful.
func (t *Tracker) Update(pkt *packet.Packet) []float64 {
	key, ok := KeyFor(pkt)
	if !ok {
		key = FlowKey{Proto: 0xff, A: uint64(pkt.Link), B: 0}
	}
	st := t.flows[key]
	if st == nil {
		st = &flowState{first: pkt.Time, last: pkt.Time}
		t.flows[key] = st
	}

	if st.count > 0 {
		iat := float64(pkt.Time-st.last) / float64(time.Millisecond)
		st.iatMean, st.iatM2 = welford(st.iatMean, st.iatM2, iat, st.count-1)
	}
	plen := float64(len(pkt.Bytes))
	st.lenMean, st.lenM2 = welford(st.lenMean, st.lenM2, plen, st.count)
	st.count++
	st.bytes += len(pkt.Bytes)
	st.last = pkt.Time
	if len(pkt.Bytes) < 64 {
		st.smallPkts++
	}
	if isSyn(pkt) {
		st.synCount++
	}

	dur := (st.last - st.first).Seconds()
	pps := 0.0
	if dur > 0 {
		pps = float64(st.count) / dur
	}
	iatN := st.count - 1
	return []float64{
		float64(st.count),
		float64(st.bytes),
		dur,
		st.iatMean,
		stddev(st.iatM2, iatN),
		st.lenMean,
		stddev(st.lenM2, st.count),
		pps,
		float64(st.synCount) / float64(st.count),
		float64(st.smallPkts) / float64(st.count),
	}
}

// welford updates a running mean and M2 with the (n+1)-th observation.
func welford(mean, m2, x float64, n int) (float64, float64) {
	n1 := float64(n + 1)
	delta := x - mean
	mean += delta / n1
	m2 += delta * (x - mean)
	return mean, m2
}

func stddev(m2 float64, n int) float64 {
	if n < 2 {
		return 0
	}
	return math.Sqrt(m2 / float64(n-1))
}

// isSyn reports whether the packet is a TCP segment with SYN set and ACK
// clear.
func isSyn(pkt *packet.Packet) bool {
	if pkt.Link != packet.LinkEthernet {
		return false
	}
	var eth packet.Ethernet
	n, err := eth.Unmarshal(pkt.Bytes)
	if err != nil || eth.EtherType != packet.EtherTypeIPv4 {
		return false
	}
	var ip packet.IPv4
	m, err := ip.Unmarshal(pkt.Bytes[n:])
	if err != nil || ip.Protocol != packet.ProtoTCP {
		return false
	}
	var tcp packet.TCP
	if _, err := tcp.Unmarshal(pkt.Bytes[n+m:]); err != nil {
		return false
	}
	return tcp.Flags&packet.TCPSyn != 0 && tcp.Flags&packet.TCPAck == 0
}
