package p4guard

import (
	"bytes"
	"testing"

	"p4guard/internal/p4"
	"p4guard/internal/packet"
	"p4guard/internal/rules"
	"p4guard/internal/switchsim"
	"p4guard/internal/trace"
)

func tracePacketSlice(ds *trace.Dataset) []*packet.Packet {
	pkts := make([]*packet.Packet, len(ds.Samples))
	for i, s := range ds.Samples {
		pkts[i] = s.Pkt
	}
	return pkts
}

func saveLoad(t *testing.T, pipe *Pipeline) *Pipeline {
	t.Helper()
	var buf bytes.Buffer
	if err := pipe.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadPipeline(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return loaded
}

// TestDifferentialMatchAgreement cross-checks every classification path on
// every scenario: the legacy linear rule scan (the reference oracle), the
// compiled bitset matcher, the TCAM ternary expansion, and the behavioural
// switch's installed detector table must all return the same class for the
// same packet. Any drift between the offline model and the data plane is a
// correctness bug, not a tuning difference.
func TestDifferentialMatchAgreement(t *testing.T) {
	for _, scen := range ScenarioNames() {
		t.Run(scen, func(t *testing.T) {
			ds, err := GenerateTrace(scen, TraceConfig{Seed: 41, Packets: 900})
			if err != nil {
				t.Fatal(err)
			}
			train, test, err := ds.Split(0.6)
			if err != nil {
				t.Fatal(err)
			}
			pipe, err := Train(train, Config{Seed: 3, NumFields: 5, MLPEpochs: 10, TreeDepth: 6})
			if err != nil {
				t.Fatal(err)
			}
			rs := pipe.RuleSet()
			ternary, err := rs.CompileTernary()
			if err != nil {
				t.Fatal(err)
			}

			sw, err := switchsim.New("diff-"+scen, ds.Link)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := sw.InstallRuleSet(rs, p4.Action{Type: p4.ActionAllow}); err != nil {
				t.Fatal(err)
			}

			pkts := tracePacketSlice(test)
			verdicts := sw.ProcessBatch(pkts)
			if pf := sw.Stats().ParseFailed; pf != 0 {
				t.Fatalf("%d generated packets failed to parse; differential comparison needs a clean trace", pf)
			}

			matcher := pipe.Matcher()
			for i, pkt := range pkts {
				oracleClass, oracleMatched := rs.ClassifyDetail(pkt)
				gotClass, gotMatched := matcher.Classify(pkt)
				if gotClass != oracleClass || gotMatched != oracleMatched {
					t.Fatalf("pkt %d: compiled matcher (%d,%v) != scan oracle (%d,%v)",
						i, gotClass, gotMatched, oracleClass, oracleMatched)
				}
				if tc := rules.ClassifyTernary(ternary, rs.DefaultClass, rs.Offsets, pkt); tc != oracleClass {
					t.Fatalf("pkt %d: ternary expansion %d != scan oracle %d", i, tc, oracleClass)
				}
				v := verdicts[i]
				if v.Matched != oracleMatched {
					t.Fatalf("pkt %d: switch matched=%v, scan oracle matched=%v", i, v.Matched, oracleMatched)
				}
				// On a table miss the verdict carries the miss action's class
				// (0), which equals the rule set's default class here.
				if v.Class != oracleClass {
					t.Fatalf("pkt %d: switch class %d != scan oracle class %d", i, v.Class, oracleClass)
				}
				wantDrop := rules.ActionForClass(oracleClass) == rules.ActionDrop && oracleMatched
				if !v.Allowed != wantDrop {
					t.Fatalf("pkt %d: switch allowed=%v, policy for class %d wants drop=%v",
						i, v.Allowed, oracleClass, wantDrop)
				}
			}
		})
	}
}

// TestDifferentialFastPathAgreement extends the differential suite to the
// zero-copy batched engine: on every scenario, the fast path's verdicts
// must be identical to the per-packet reference engine, to the offline
// matcher/oracle classification, and to the side-effect-free Explain
// reconstruction — at one worker and across parallel shard counts.
func TestDifferentialFastPathAgreement(t *testing.T) {
	for _, scen := range ScenarioNames() {
		t.Run(scen, func(t *testing.T) {
			ds, err := GenerateTrace(scen, TraceConfig{Seed: 43, Packets: 800})
			if err != nil {
				t.Fatal(err)
			}
			train, test, err := ds.Split(0.6)
			if err != nil {
				t.Fatal(err)
			}
			pipe, err := Train(train, Config{Seed: 3, NumFields: 5, MLPEpochs: 10, TreeDepth: 6})
			if err != nil {
				t.Fatal(err)
			}
			rs := pipe.RuleSet()

			mk := func(fast bool) *switchsim.Switch {
				sw, err := switchsim.New("fastdiff-"+scen, ds.Link)
				if err != nil {
					t.Fatal(err)
				}
				sw.SetFastPath(fast)
				if _, err := sw.InstallRuleSet(rs, p4.Action{Type: p4.ActionAllow}); err != nil {
					t.Fatal(err)
				}
				return sw
			}

			pkts := tracePacketSlice(test)
			ref := mk(false)
			want := ref.ProcessBatch(pkts)

			fast := mk(true)
			got := fast.ProcessBatch(pkts)
			matcher := pipe.Matcher()
			for i, pkt := range pkts {
				if got[i] != want[i] {
					t.Fatalf("pkt %d: fast %+v != per-packet reference %+v", i, got[i], want[i])
				}
				oracleClass, oracleMatched := rs.ClassifyDetail(pkt)
				mc, mm := matcher.Classify(pkt)
				if mc != oracleClass || mm != oracleMatched {
					t.Fatalf("pkt %d: matcher (%d,%v) != oracle (%d,%v)", i, mc, mm, oracleClass, oracleMatched)
				}
				if got[i].Matched != oracleMatched || got[i].Class != oracleClass {
					t.Fatalf("pkt %d: fast verdict %+v disagrees with oracle (%d,%v)",
						i, got[i], oracleClass, oracleMatched)
				}
				if ev := fast.Explain(pkt); ev.Verdict != got[i] {
					t.Fatalf("pkt %d: Explain verdict %+v != fast verdict %+v", i, ev.Verdict, got[i])
				}
			}

			for _, workers := range []int{1, 2, 4} {
				sw := mk(true)
				verdicts := sw.ProcessBatchParallel(pkts, workers)
				for i := range want {
					if verdicts[i] != want[i] {
						t.Fatalf("workers=%d pkt %d: %+v != reference %+v", workers, i, verdicts[i], want[i])
					}
				}
			}
		})
	}
}

// TestDifferentialFastPathUnderTernaryChurn interleaves detector
// reprogramming (fresh rule sets and high-priority ternary inserts) with
// forwarding bursts and re-checks fast-vs-reference agreement after every
// mutation, so flow-cache invalidation is exercised on realistic traffic.
func TestDifferentialFastPathUnderTernaryChurn(t *testing.T) {
	ds, err := GenerateTrace("wifi-mqtt", TraceConfig{Seed: 47, Packets: 600})
	if err != nil {
		t.Fatal(err)
	}
	pkts := tracePacketSlice(ds)

	fast, err := switchsim.New("churn-fast", ds.Link)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := switchsim.New("churn-ref", ds.Link)
	if err != nil {
		t.Fatal(err)
	}
	ref.SetFastPath(false)

	for round := 0; round < 5; round++ {
		sub, _, err := ds.Split(0.5 + 0.08*float64(round))
		if err != nil {
			t.Fatal(err)
		}
		pipe, err := Train(sub, Config{Seed: int64(round + 1), NumFields: 4, MLPEpochs: 6, TreeDepth: 5})
		if err != nil {
			t.Fatal(err)
		}
		rs := pipe.RuleSet()
		for _, sw := range []*switchsim.Switch{fast, ref} {
			if _, err := sw.InstallRuleSet(rs, p4.Action{Type: p4.ActionAllow}); err != nil {
				t.Fatal(err)
			}
		}
		if round%2 == 1 {
			width := len(rs.Offsets)
			lo := make([]byte, width)
			hi := make([]byte, width)
			for i := range hi {
				hi[i] = 0x7f
			}
			for _, sw := range []*switchsim.Switch{fast, ref} {
				if _, err := sw.InsertDetectorEntry(p4.Entry{
					Priority: 1000, Lo: lo, Hi: hi,
					Action: p4.Action{Type: p4.ActionDrop, Class: 2},
				}); err != nil {
					t.Fatal(err)
				}
			}
		}
		want := ref.ProcessBatch(pkts)
		got := fast.ProcessBatch(pkts)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("round %d pkt %d: fast %+v != reference %+v", round, i, got[i], want[i])
			}
		}
	}
}

// TestDifferentialAgreementSurvivesReload runs the matcher/oracle agreement
// check on a pipeline that has been through a Save/Load round trip, so the
// recompiled matcher in LoadPipeline is covered too.
func TestDifferentialAgreementSurvivesReload(t *testing.T) {
	train, test := trainTest(t, "wifi-mqtt", 1000)
	pipe, err := Train(train, Config{Seed: 5, NumFields: 5, MLPEpochs: 10})
	if err != nil {
		t.Fatal(err)
	}
	loaded := saveLoad(t, pipe)
	rs := loaded.RuleSet()
	matcher := loaded.Matcher()
	if matcher == nil {
		t.Fatal("loaded pipeline has no compiled matcher")
	}
	for i, s := range test.Samples {
		wantClass, wantMatched := rs.ClassifyDetail(s.Pkt)
		gotClass, gotMatched := matcher.Classify(s.Pkt)
		if gotClass != wantClass || gotMatched != wantMatched {
			t.Fatalf("pkt %d: reloaded matcher (%d,%v) != scan oracle (%d,%v)",
				i, gotClass, gotMatched, wantClass, wantMatched)
		}
	}
}
