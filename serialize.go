package p4guard

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"io"
	"math/rand"

	"p4guard/internal/autoenc"
	"p4guard/internal/dtree"
	"p4guard/internal/nn"
	"p4guard/internal/packet"
)

// pipelineSnap is the on-disk form of a trained pipeline. Auto (the
// drift-residual autoencoder) is optional in both directions: gob skips
// absent fields, so old files load with a nil residual model and new
// files load under old readers.
type pipelineSnap struct {
	Offsets    []int
	Link       int
	ClassNames []string
	Net        []byte
	Tree       []byte
	Auto       []byte
}

// Save writes the trained pipeline (field selection, MLP, tree) to w. The
// rule set is recompiled at load time, which keeps the format small and
// guarantees rules always match the stored tree.
func (p *Pipeline) Save(w io.Writer) error {
	if p.net == nil || p.tree == nil {
		return fmt.Errorf("p4guard: cannot save untrained pipeline")
	}
	var netBuf, treeBuf, autoBuf bytes.Buffer
	if err := nn.Save(&netBuf, p.net); err != nil {
		return err
	}
	if err := p.tree.Save(&treeBuf); err != nil {
		return err
	}
	if p.auto != nil {
		if err := autoenc.Save(&autoBuf, p.auto); err != nil {
			return err
		}
	}
	snap := pipelineSnap{
		Offsets:    p.Offsets,
		Link:       int(p.Link),
		ClassNames: p.ClassNames,
		Net:        netBuf.Bytes(),
		Tree:       treeBuf.Bytes(),
		Auto:       autoBuf.Bytes(),
	}
	if err := gob.NewEncoder(w).Encode(snap); err != nil {
		return fmt.Errorf("p4guard: encode pipeline: %w", err)
	}
	return nil
}

// LoadPipeline reads a pipeline saved by Save and recompiles its rule set.
func LoadPipeline(r io.Reader) (*Pipeline, error) {
	var snap pipelineSnap
	if err := gob.NewDecoder(r).Decode(&snap); err != nil {
		return nil, fmt.Errorf("p4guard: decode pipeline: %w", err)
	}
	net, err := nn.Load(bytes.NewReader(snap.Net), rand.New(rand.NewSource(0)))
	if err != nil {
		return nil, err
	}
	tree, err := dtree.Load(bytes.NewReader(snap.Tree))
	if err != nil {
		return nil, err
	}
	p := &Pipeline{
		Offsets:    snap.Offsets,
		Link:       packet.LinkType(snap.Link),
		ClassNames: snap.ClassNames,
		net:        net,
		tree:       tree,
	}
	if len(snap.Auto) > 0 {
		auto, err := autoenc.Load(bytes.NewReader(snap.Auto))
		if err != nil {
			return nil, err
		}
		p.auto = auto
	}
	rs, err := tree.CompileRuleSet(snap.Offsets, 0)
	if err != nil {
		return nil, err
	}
	rs.SetLink(p.Link)
	if err := p.setRuleSet(rs); err != nil {
		return nil, err
	}
	return p, nil
}
