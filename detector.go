package p4guard

import (
	"fmt"

	"p4guard/internal/baseline"
	"p4guard/internal/tensor"
	"p4guard/internal/trace"
)

// tensorRow wraps a single feature row as a 1×n matrix.
func tensorRow(row []float64) (*tensor.Matrix, error) {
	return tensor.FromSlice(1, len(row), row)
}

// Detector adapts the two-stage pipeline to the common Detector interface
// the evaluation harness runs every method through.
type Detector struct {
	Config Config
	pipe   *Pipeline
}

var (
	_ baseline.Detector    = (*Detector)(nil)
	_ baseline.TableCoster = (*Detector)(nil)
)

// NewDetector returns an untrained two-stage detector.
func NewDetector(cfg Config) *Detector { return &Detector{Config: cfg} }

// Name implements baseline.Detector.
func (d *Detector) Name() string { return "two-stage" }

// Fit implements baseline.Detector.
func (d *Detector) Fit(train *trace.Dataset) error {
	pipe, err := Train(train, d.Config)
	if err != nil {
		return err
	}
	d.pipe = pipe
	return nil
}

// Predict implements baseline.Detector (data-plane semantics).
func (d *Detector) Predict(test *trace.Dataset) ([]int, error) {
	if d.pipe == nil {
		return nil, fmt.Errorf("p4guard: %s not fitted", d.Name())
	}
	return d.pipe.Predict(test)
}

// TableCost implements baseline.TableCoster.
func (d *Detector) TableCost() (int, int) {
	if d.pipe == nil {
		return -1, -1
	}
	return d.pipe.TableCost()
}

// Pipeline returns the trained pipeline (nil before Fit).
func (d *Detector) Pipeline() *Pipeline { return d.pipe }
