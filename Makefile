GO ?= go

.PHONY: build test race bench ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Hot-path microbenchmarks only (fast feedback while tuning).
bench:
	$(GO) test -run '^$$' -bench 'BenchmarkKeyIndexFind|BenchmarkCompiledMatcherClassify|BenchmarkRuleSetClassify|BenchmarkDataPlaneLookup$$|BenchmarkSwitchRunSequential|BenchmarkSwitchRunParallel' -benchtime 1s ./...

# Full CI gate: vet + build + race-enabled tests + hot-path benchmarks.
ci:
	sh scripts/ci.sh
